(** Simulation-based sequential equivalence checks.

    Two checks are provided, matching what retiming-based synthesis can
    guarantee (see DESIGN.md):

    - [io_equal]: exact same-cycle equality of output streams from reset.
      Holds for transformations that keep register positions (e.g. plain
      technology mapping without retiming).
    - [latency_equal]: equality of output streams after a warm-up period
      and with a constant latency shift — what pipelining provides on
      flushable circuits.

    These are bounded randomized checks, not proofs: they simulate many
    random input streams. *)

val io_equal :
  ?cycles:int -> ?runs:int -> Prelude.Rng.t ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> bool
(** Same PI/PO counts required; defaults: 64 cycles, 8 runs. *)

val latency_equal :
  ?cycles:int -> ?runs:int -> warmup:int -> latency:int -> Prelude.Rng.t ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> bool
(** [latency_equal ~warmup ~latency rng a b]: for every [t >= warmup],
    output of [b] at cycle [t + latency] equals output of [a] at [t]. *)

val mapped_equal :
  ?cycles:int -> ?runs:int -> ?warmup:int -> Prelude.Rng.t ->
  Circuit.Netlist.t -> Circuit.Netlist.t -> bool
(** [mapped_equal rng original mapped] checks a technology-mapped circuit
    against its source when mapping moved registers into LUT-input delays
    (TurboMap/TurboSYN).  Node names of [mapped] identify the source
    signals: the source is simulated for [warmup] cycles (default 48) and
    its actual signal history initializes the mapped circuit's register
    chains ([Simulator]'s prehistory); both must then produce identical
    output streams.  This is the correct sequential-equivalence notion for
    register-retiming transforms — equality from consistent initial
    states. *)

val find_io_mismatch :
  ?cycles:int -> Prelude.Rng.t -> Circuit.Netlist.t -> Circuit.Netlist.t ->
  (int * bool array array) option
(** First cycle where outputs differ on one random stream, with the input
    stream played so far — a debugging aid. *)
