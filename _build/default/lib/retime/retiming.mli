(** Leiserson–Saxe retiming of unit-delay circuits.

    A retiming assigns an integer lag [r(v)] to every node; edge weights
    become [w'(u,v) = w(u,v) + r(v) - r(u)].  Cycle weights are invariant,
    I/O latency changes by [r(po) - r(pi)].  Pure retiming fixes
    [r = 0] on PIs and POs; pipelined retiming (see {!Pipeline}) lets PO
    lags grow, which inserts pipeline stages. *)

val delta :
  Circuit.Netlist.t -> weight:(int -> int -> int) -> int array option
(** Arrival times over the zero-weight subgraph under a caller-supplied
    weight view ([weight v j] is the weight of fanin [j] of [v]); [None] on
    a zero-weight cycle.  Shared with {!Pipeline}'s FEAS iteration. *)

val retimed_weight : Circuit.Netlist.t -> int array -> int -> int -> int
(** [retimed_weight nl r v j = w + r.(v) - r.(driver)] for fanin [j] of
    [v]. *)

val clock_period : Circuit.Netlist.t -> int
(** Maximum combinational path delay (number of gates on a register-free
    path), i.e. the clock period of the circuit as it stands.
    @raise Invalid_argument on a combinational loop. *)

val legal : Circuit.Netlist.t -> r:int array -> bool
(** All retimed edge weights non-negative. *)

val apply : Circuit.Netlist.t -> r:int array -> Circuit.Netlist.t
(** A copy of the circuit with retimed weights.
    @raise Invalid_argument when [r] is illegal. *)

val min_period : Circuit.Netlist.t -> int * int array
(** Minimum clock period achievable by pure retiming ([r = 0] on PIs and
    POs) and a lag vector achieving it.  Exact: binary search over target
    periods with a Bellman–Ford solve of the Leiserson–Saxe difference
    constraints (W/D matrices).  Quadratic in circuit size — intended for
    circuits up to a few thousand nodes.
    @raise Invalid_argument on a combinational loop. *)

val feasible_period : Circuit.Netlist.t -> period:int -> int array option
(** Lag vector achieving clock period [<= period] under pure retiming, if
    one exists. *)

val ff_count : Circuit.Netlist.t -> r:int array -> int
(** Shared-register count of the retimed circuit (sum over drivers of the
    maximum retimed weight across their fanout edges), computed without
    materializing the circuit. *)

val minimize_ffs : Circuit.Netlist.t -> period:int -> r:int array -> int array
(** Greedy register-count reduction (the paper leaves FF minimization to
    retiming): starting from the legal lag vector [r] (clock period
    [<= period]), repeatedly nudge single gate lags by ±1 whenever that
    lowers [ff_count] while preserving legality and the period.  Returns a
    lag vector no worse than [r] on either metric. *)
