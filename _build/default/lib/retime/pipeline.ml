open Circuit

let period_lower_bound nl =
  match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Infinite -> `Infinite
  | Graphs.Cycle_ratio.No_cycle -> `Period 1
  | Graphs.Cycle_ratio.Ratio r -> `Period (max 1 (Prelude.Rat.ceil r))

let retime_to_period nl ~period =
  match period_lower_bound nl with
  | `Infinite -> None
  | `Period lb when period < lb -> None
  | `Period _ ->
      let n = Netlist.n nl in
      let r = Array.make n 0 in
      let weight v j = Retiming.retimed_weight nl r v j in
      let max_iter = (4 * n) + 64 in
      let rec iterate remaining =
        if remaining = 0 then
          (* cannot happen when period >= the loop bound (FEAS converges in
             O(n) iterations); defensive *)
          invalid_arg "Pipeline.retime_to_period: did not converge"
        else
          match Retiming.delta nl ~weight with
          | None ->
              (* cycle weights are retiming-invariant, so a zero-weight cycle
                 here implies one in the input, excluded by the loop bound *)
              assert false
          | Some dl ->
              let any = ref false in
              for v = 0 to n - 1 do
                if dl.(v) > period && Netlist.kind nl v <> Netlist.Pi then begin
                  r.(v) <- r.(v) + 1;
                  any := true
                end
              done;
              if !any then iterate (remaining - 1)
      in
      iterate max_iter;
      assert (Retiming.legal nl ~r);
      Some r

let min_period nl =
  match period_lower_bound nl with
  | `Infinite -> invalid_arg "Pipeline.min_period: combinational loop"
  | `Period lb -> (
      match retime_to_period nl ~period:lb with
      | Some r -> (lb, r)
      | None -> assert false)

let latency nl ~r =
  List.fold_left (fun acc po -> max acc r.(po)) 0 (Netlist.pos nl)
