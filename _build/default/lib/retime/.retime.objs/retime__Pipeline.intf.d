lib/retime/pipeline.mli: Circuit
