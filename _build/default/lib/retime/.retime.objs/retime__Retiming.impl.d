lib/retime/retiming.ml: Array Circuit Graphs List Netlist Set
