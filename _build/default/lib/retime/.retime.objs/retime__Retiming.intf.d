lib/retime/retiming.mli: Circuit
