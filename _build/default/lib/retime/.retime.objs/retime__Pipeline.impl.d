lib/retime/pipeline.ml: Array Circuit Graphs List Netlist Prelude Retiming
