(** Retiming with pipelining: PO lags are free (non-negative), which is
    equivalent to inserting pipeline registers on the input side and letting
    retiming distribute them.

    With pipelining, the achievable clock period of a unit-delay circuit is
    bounded only by its loops: [max (1, ceil (MDR))] (Papaefthymiou / the
    paper's Problem 1 rationale).  [min_period] computes that bound exactly
    from the MDR ratio and constructs lags achieving it with the ASAP
    relaxation of Leiserson–Saxe's FEAS (gates and POs with arrival beyond
    the target get their lag incremented; PI lags stay 0). *)

val period_lower_bound :
  Circuit.Netlist.t -> [ `Period of int | `Infinite ]
(** [max (1, ceil MDR)]; [`Infinite] when the circuit has a combinational
    loop.  Acyclic circuits give period 1. *)

val retime_to_period : Circuit.Netlist.t -> period:int -> int array option
(** Lags (with [r >= 0], [r = 0] on PIs) achieving the period under
    retiming + pipelining, or [None] when [period] is below the loop
    bound. *)

val min_period : Circuit.Netlist.t -> int * int array
(** The loop bound and lags achieving it.
    @raise Invalid_argument on a combinational loop. *)

val latency : Circuit.Netlist.t -> r:int array -> int
(** Added I/O latency: the maximum PO lag. *)
