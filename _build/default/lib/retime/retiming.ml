open Circuit

let delta nl ~weight =
  (* arrival times over the zero-weight subgraph; weight v j gives the
     (possibly retimed) weight of fanin j of v *)
  let n = Netlist.n nl in
  let succ =
    let out = Array.make n [] in
    for v = 0 to n - 1 do
      Array.iteri
        (fun j (d, _) -> if weight v j = 0 then out.(d) <- v :: out.(d))
        (Netlist.fanins nl v)
    done;
    fun v -> out.(v)
  in
  match Graphs.Topo.sort ~n ~succ with
  | None -> None
  | Some order ->
      let dl = Array.make n 0 in
      Array.iter
        (fun v ->
          let dv = Netlist.delay nl v in
          dl.(v) <- dv;
          Array.iteri
            (fun j (d, _) ->
              if weight v j = 0 && dl.(d) + dv > dl.(v) then dl.(v) <- dl.(d) + dv)
            (Netlist.fanins nl v))
        order;
      Some dl

let plain_weight nl v j = snd (Netlist.fanins nl v).(j)

let clock_period nl =
  match delta nl ~weight:(plain_weight nl) with
  | None -> invalid_arg "Retiming.clock_period: combinational loop"
  | Some dl -> Array.fold_left max 0 dl

let retimed_weight nl r v j =
  let d, w = (Netlist.fanins nl v).(j) in
  w + r.(v) - r.(d)

let legal nl ~r =
  let ok = ref true in
  for v = 0 to Netlist.n nl - 1 do
    Array.iteri
      (fun j _ -> if retimed_weight nl r v j < 0 then ok := false)
      (Netlist.fanins nl v)
  done;
  !ok

let apply nl ~r =
  if Array.length r <> Netlist.n nl then invalid_arg "Retiming.apply: length";
  if not (legal nl ~r) then invalid_arg "Retiming.apply: illegal retiming";
  let nl' = Netlist.copy nl in
  for v = 0 to Netlist.n nl' - 1 do
    Array.iteri
      (fun j _ -> Netlist.set_weight nl' v j (retimed_weight nl r v j))
      (Netlist.fanins nl' v)
  done;
  nl'

(* ---- exact minimum-period retiming via W/D matrices ---- *)

(* Per-source Dijkstra for W(u,.), then longest-delay DP over the tight
   (minimum-weight) subgraph, which is acyclic because the circuit has no
   zero-weight cycles. *)
let wd_rows nl u =
  let n = Netlist.n nl in
  let fanouts = Netlist.fanouts nl in
  let wrow = Array.make n max_int in
  let module Pq = Set.Make (struct
    type t = int * int (* (dist, node) *)

    let compare = compare
  end) in
  wrow.(u) <- 0;
  let pq = ref (Pq.singleton (0, u)) in
  while not (Pq.is_empty !pq) do
    let ((d, v) as el) = Pq.min_elt !pq in
    pq := Pq.remove el !pq;
    if d = wrow.(v) then
      List.iter
        (fun cons ->
          Array.iter
            (fun (drv, w) ->
              if drv = v && wrow.(v) <> max_int && wrow.(v) + w < wrow.(cons)
              then begin
                wrow.(cons) <- wrow.(v) + w;
                pq := Pq.add (wrow.(cons), cons) !pq
              end)
            (Netlist.fanins nl cons))
        fanouts.(v)
  done;
  (* tight subgraph: edges (x -> y) with wrow.(x) + w = wrow.(y) *)
  let drow = Array.make n min_int in
  drow.(u) <- Netlist.delay nl u;
  let tight_succ v =
    if wrow.(v) = max_int then []
    else
      List.filter
        (fun cons ->
          Array.exists
            (fun (drv, w) -> drv = v && wrow.(v) + w = wrow.(cons))
            (Netlist.fanins nl cons))
        fanouts.(v)
  in
  (* topological order restricted to reachable tight subgraph *)
  (match Graphs.Topo.sort ~n ~succ:tight_succ with
  | None -> invalid_arg "Retiming: zero-weight cycle"
  | Some order ->
      Array.iter
        (fun v ->
          if drow.(v) <> min_int then
            List.iter
              (fun cons ->
                let dc = drow.(v) + Netlist.delay nl cons in
                if dc > drow.(cons) then drow.(cons) <- dc)
              (tight_succ v))
        order);
  (wrow, drow)

let feasible_period nl ~period =
  let n = Netlist.n nl in
  (* difference constraints solved by Bellman-Ford from a virtual node n *)
  let constraints = ref [] in
  (* legality: r(u) - r(v) <= w(e)  =>  edge v -> u length w *)
  for v = 0 to n - 1 do
    Array.iter
      (fun (d, w) -> constraints := (v, d, w) :: !constraints)
      (Netlist.fanins nl v)
  done;
  (* period: for D(u,v) > c: r(u) - r(v) <= W(u,v) - 1 => edge v -> u *)
  for u = 0 to n - 1 do
    let wrow, drow = wd_rows nl u in
    for v = 0 to n - 1 do
      if drow.(v) <> min_int && drow.(v) > period && wrow.(v) <> max_int then
        constraints := (v, u, wrow.(v) - 1) :: !constraints
    done
  done;
  (* fixed lags on PIs and POs: r(x) = 0 via x <-> virtual *)
  List.iter
    (fun x ->
      constraints := (n, x, 0) :: (x, n, 0) :: !constraints)
    (Netlist.pis nl @ Netlist.pos nl);
  (* Solve the difference constraints by shortest paths from an extra
     super-source with 0-length edges to every variable (so every variable
     is reachable); a negative cycle means the period is infeasible.  The
     virtual reference node [n] pins PI/PO lags: subtracting dist(n)
     normalizes them to exactly 0. *)
  let dist = Array.make (n + 1) 0 in
  let edges = Array.of_list !constraints in
  let changed = ref true in
  let pass = ref 0 in
  let negative = ref false in
  while !changed && not !negative do
    changed := false;
    Array.iter
      (fun (a, b, len) ->
        if dist.(a) + len < dist.(b) then begin
          dist.(b) <- dist.(a) + len;
          changed := true
        end)
      edges;
    incr pass;
    if !changed && !pass > n + 1 then negative := true
  done;
  if !negative then None
  else begin
    let ref_dist = dist.(n) in
    let r = Array.init n (fun v -> dist.(v) - ref_dist) in
    assert (legal nl ~r);
    Some r
  end

let min_period nl =
  let ub = clock_period nl in
  let lo = ref 1 and hi = ref ub in
  let best = ref (ub, Array.make (Netlist.n nl) 0) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    match feasible_period nl ~period:mid with
    | Some r ->
        best := (mid, r);
        hi := mid - 1
    | None -> lo := mid + 1
  done;
  !best

let ff_count nl ~r =
  let n = Netlist.n nl in
  let maxw = Array.make n 0 in
  for v = 0 to n - 1 do
    Array.iteri
      (fun j (d, _) ->
        let w = retimed_weight nl r v j in
        if w > maxw.(d) then maxw.(d) <- w)
      (Netlist.fanins nl v)
  done;
  Array.fold_left ( + ) 0 maxw

let period_of nl r =
  match delta nl ~weight:(retimed_weight nl r) with
  | None -> max_int
  | Some dl -> Array.fold_left max 0 dl

let minimize_ffs nl ~period ~r =
  if not (legal nl ~r) then invalid_arg "Retiming.minimize_ffs: illegal lags";
  let r = Array.copy r in
  let best = ref (ff_count nl ~r) in
  let gates = Netlist.gates nl in
  let improved = ref true in
  let rounds = ref (Netlist.n nl * 4) in
  while !improved && !rounds > 0 do
    decr rounds;
    improved := false;
    List.iter
      (fun v ->
        List.iter
          (fun delta_r ->
            r.(v) <- r.(v) + delta_r;
            let better =
              legal nl ~r
              && period_of nl r <= period
              &&
              let c = ff_count nl ~r in
              c < !best
            in
            if better then begin
              best := ff_count nl ~r;
              improved := true
            end
            else r.(v) <- r.(v) - delta_r)
          [ 1; -1 ])
      gates
  done;
  r
