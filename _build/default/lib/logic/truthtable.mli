(** Truth tables for Boolean functions of up to 6 variables.

    A function of arity [k] (0 <= k <= 6) is stored as the low [2^k] bits of
    an [int64]: bit [i] is the value of the function on the assignment whose
    bit [j] gives the value of variable [j].  Bits above [2^k] are always
    zero (canonical form), so structural equality coincides with functional
    equality at a given arity.

    Truth tables are the function representation of netlist gates and of
    mapped K-LUTs (the paper uses K = 5).  Larger cut functions (up to the
    paper's Cmax = 15 inputs) are handled by the [bdd] library. *)

type t = private { arity : int; bits : int64 }

val max_arity : int
(** 6: the largest arity representable in an [int64]. *)

val create : int -> int64 -> t
(** [create arity bits] masks [bits] to the low [2^arity] bits.
    @raise Invalid_argument if [arity] is outside [\[0, 6\]]. *)

val arity : t -> int
val bits : t -> int64

val const0 : int -> t
(** [const0 k] is the always-false function of arity [k]. *)

val const1 : int -> t
val var : int -> int -> t
(** [var arity j] is the projection on variable [j].
    @raise Invalid_argument unless [0 <= j < arity]. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val nand : t -> t -> t
val nor : t -> t -> t
val xnor : t -> t -> t
(** Binary operators require equal arities.
    @raise Invalid_argument on arity mismatch. *)

val ite : t -> t -> t -> t
(** [ite c a b] is if-then-else, all of equal arity. *)

val eval : t -> bool array -> bool
(** [eval f inputs] with [Array.length inputs = arity f]. *)

val eval_bits : t -> int -> bool
(** [eval_bits f m] evaluates on the assignment encoded by the low bits of
    [m]. *)

val cofactor : t -> int -> bool -> t
(** [cofactor f j b] fixes variable [j] to [b]; the result keeps arity
    [arity f] (variable [j] becomes irrelevant). *)

val depends_on : t -> int -> bool
(** Whether the function value depends on variable [j]. *)

val support : t -> int list
(** Indices the function actually depends on, increasing. *)

val shrink_support : t -> t * int list
(** [shrink_support f] removes irrelevant variables: returns [(g, vars)]
    where [arity g = List.length vars], [vars] are the support indices of
    [f] in increasing order, and [g] applied to the values of those
    variables equals [f]. *)

val permute : t -> int array -> t
(** [permute f p] renames variables: variable [j] of the result corresponds
    to variable [p.(j)] of [f].  [p] must be a permutation of
    [0 .. arity-1]. *)

val lift : t -> int -> t
(** [lift f k] re-expresses [f] with arity [k >= arity f]; the new variables
    are irrelevant. *)

val count_ones : t -> int
(** Number of satisfying assignments. *)

val is_const : t -> bool option
(** [Some false] for constant 0, [Some true] for constant 1, else [None]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val random : Prelude.Rng.t -> int -> t
(** Uniformly random function of the given arity. *)

val random_nondegenerate : Prelude.Rng.t -> int -> t
(** Random function that depends on all of its variables (by rejection;
    falls back to XOR of all variables after 64 attempts, which always
    depends on everything). *)

val xor_all : int -> t
(** Parity of all [k] variables. *)

val and_all : int -> t
val or_all : int -> t

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [3:0x8e]. *)

val to_string : t -> string
