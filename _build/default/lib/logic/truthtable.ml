type t = { arity : int; bits : int64 }

let max_arity = 6

let mask arity =
  if arity = 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl arity)) 1L

let create arity bits =
  if arity < 0 || arity > max_arity then invalid_arg "Truthtable.create: arity";
  { arity; bits = Int64.logand bits (mask arity) }

let arity t = t.arity
let bits t = t.bits
let const0 k = create k 0L
let const1 k = create k (-1L)

(* Precomputed projection patterns: pattern for variable [j] is the int64
   whose bit [i] equals bit [j] of [i]. *)
let var_pattern =
  let pat j =
    let v = ref 0L in
    for i = 0 to 63 do
      if i land (1 lsl j) <> 0 then v := Int64.logor !v (Int64.shift_left 1L i)
    done;
    !v
  in
  Array.init 6 pat

let var arity j =
  if j < 0 || j >= arity then invalid_arg "Truthtable.var: index";
  create arity var_pattern.(j)

let check_same a b =
  if a.arity <> b.arity then invalid_arg "Truthtable: arity mismatch"

let not_ a = create a.arity (Int64.lognot a.bits)

let and_ a b =
  check_same a b;
  { a with bits = Int64.logand a.bits b.bits }

let or_ a b =
  check_same a b;
  { a with bits = Int64.logor a.bits b.bits }

let xor a b =
  check_same a b;
  { a with bits = Int64.logxor a.bits b.bits }

let nand a b = not_ (and_ a b)
let nor a b = not_ (or_ a b)
let xnor a b = not_ (xor a b)

let ite c a b =
  check_same c a;
  check_same c b;
  or_ (and_ c a) (and_ (not_ c) b)

let eval_bits t m =
  let m = m land ((1 lsl t.arity) - 1) in
  Int64.logand (Int64.shift_right_logical t.bits m) 1L = 1L

let eval t inputs =
  if Array.length inputs <> t.arity then invalid_arg "Truthtable.eval: arity";
  let m = ref 0 in
  Array.iteri (fun j b -> if b then m := !m lor (1 lsl j)) inputs;
  eval_bits t !m

let cofactor t j b =
  if j < 0 || j >= t.arity then invalid_arg "Truthtable.cofactor: index";
  let p = var_pattern.(j) in
  let shift = 1 lsl j in
  if b then
    (* Keep entries where var j = 1, replicate onto var j = 0 slots. *)
    let hi = Int64.logand t.bits p in
    create t.arity (Int64.logor hi (Int64.shift_right_logical hi shift))
  else
    let lo = Int64.logand t.bits (Int64.lognot p) in
    create t.arity (Int64.logor lo (Int64.shift_left lo shift))

let depends_on t j =
  j >= 0 && j < t.arity
  && not (Int64.equal (cofactor t j true).bits (cofactor t j false).bits)

let support t =
  List.filter (depends_on t) (List.init t.arity Fun.id)

let shrink_support t =
  let vars = support t in
  let k = List.length vars in
  let vars_arr = Array.of_list vars in
  let b = ref 0L in
  for i = 0 to (1 lsl k) - 1 do
    (* Map compact assignment i to a full assignment of t. *)
    let m = ref 0 in
    Array.iteri (fun pos v -> if i land (1 lsl pos) <> 0 then m := !m lor (1 lsl v)) vars_arr;
    if eval_bits t !m then b := Int64.logor !b (Int64.shift_left 1L i)
  done;
  (create k !b, vars)

let permute t p =
  if Array.length p <> t.arity then invalid_arg "Truthtable.permute: length";
  let b = ref 0L in
  for i = 0 to (1 lsl t.arity) - 1 do
    (* assignment i of the result: variable j has value bit j of i, which is
       the value of variable p.(j) of t. *)
    let m = ref 0 in
    for j = 0 to t.arity - 1 do
      if i land (1 lsl j) <> 0 then m := !m lor (1 lsl p.(j))
    done;
    if eval_bits t !m then b := Int64.logor !b (Int64.shift_left 1L i)
  done;
  create t.arity !b

let lift t k =
  if k < t.arity || k > max_arity then invalid_arg "Truthtable.lift";
  let b = ref 0L in
  for i = 0 to (1 lsl k) - 1 do
    if eval_bits t (i land ((1 lsl t.arity) - 1)) then
      b := Int64.logor !b (Int64.shift_left 1L i)
  done;
  create k !b

let count_ones t =
  let rec go acc b =
    if Int64.equal b 0L then acc
    else go (acc + 1) (Int64.logand b (Int64.sub b 1L))
  in
  go 0 t.bits

let is_const t =
  if Int64.equal t.bits 0L then Some false
  else if Int64.equal t.bits (mask t.arity) then Some true
  else None

let equal a b = a.arity = b.arity && Int64.equal a.bits b.bits
let compare a b =
  let c = Int.compare a.arity b.arity in
  if c <> 0 then c else Int64.compare a.bits b.bits

let hash t = Hashtbl.hash (t.arity, t.bits)

let random rng k = create k (Prelude.Rng.int64 rng)

let xor_all k =
  let f = ref (const0 k) in
  for j = 0 to k - 1 do
    f := xor !f (var k j)
  done;
  !f

let and_all k =
  let f = ref (const1 k) in
  for j = 0 to k - 1 do
    f := and_ !f (var k j)
  done;
  !f

let or_all k =
  let f = ref (const0 k) in
  for j = 0 to k - 1 do
    f := or_ !f (var k j)
  done;
  !f

let random_nondegenerate rng k =
  let rec try_ n =
    if n = 0 then xor_all k
    else
      let f = random rng k in
      if List.length (support f) = k then f else try_ (n - 1)
  in
  if k = 0 then const1 0 else try_ 64

let pp fmt t = Format.fprintf fmt "%d:0x%Lx" t.arity t.bits
let to_string t = Format.asprintf "%a" pp t
