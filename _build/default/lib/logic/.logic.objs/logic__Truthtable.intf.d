lib/logic/truthtable.mli: Format Prelude
