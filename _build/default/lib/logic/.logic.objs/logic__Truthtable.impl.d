lib/logic/truthtable.ml: Array Format Fun Hashtbl Int Int64 List Prelude
