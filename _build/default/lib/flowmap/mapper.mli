(** LUT network generation from computed labels (the mapping phase of
    FlowMap/FlowSYN).

    Starting from the roots, each needed gate is realized by the
    implementation recorded during labeling — a single LUT over its cut, or
    a decomposed LUT tree — and its cut inputs become needed in turn.
    Equal LUTs over identical mapped fanins are shared. *)

type mapped = {
  comb : Comb.t;  (** the LUT network; every gate has at most K inputs *)
  node_of : int array;
      (** original node -> node in [comb]; [-1] when the original node is
          not part of the mapping *)
  luts : int;
  depth : int;
}

val generate : Comb.t -> Labels.result -> mapped
(** @raise Invalid_argument when labels/impls do not cover the roots. *)

val check : Comb.t -> mapped -> k:int -> bool
(** Structural + functional verification: the mapped network is K-bounded
    and every root computes the same function of the original inputs
    (checked symbolically with BDDs). *)
