type node_kind = In | Gate of Logic.Truthtable.t

type t = {
  kind : node_kind array;
  fanins : int array array;
  roots : int list;
}

let n t = Array.length t.kind

let succ t =
  let out = Array.make (n t) [] in
  Array.iteri
    (fun v fi -> Array.iter (fun u -> out.(u) <- v :: out.(u)) fi)
    t.fanins;
  fun v -> out.(v)

let validate t =
  if Array.length t.fanins <> n t then invalid_arg "Comb: length mismatch";
  Array.iteri
    (fun v fi ->
      (match t.kind.(v) with
      | In ->
          if Array.length fi <> 0 then invalid_arg "Comb: input with fanins"
      | Gate f ->
          if Logic.Truthtable.arity f <> Array.length fi then
            invalid_arg "Comb: arity mismatch");
      Array.iter
        (fun u -> if u < 0 || u >= n t then invalid_arg "Comb: bad fanin id")
        fi)
    t.fanins;
  List.iter
    (fun r -> if r < 0 || r >= n t then invalid_arg "Comb: bad root id")
    t.roots;
  match Graphs.Topo.sort ~n:(n t) ~succ:(succ t) with
  | Some _ -> ()
  | None -> invalid_arg "Comb: cyclic"

let topo_order t = Graphs.Topo.sort_exn ~n:(n t) ~succ:(succ t)

let cone t v =
  let seen = Hashtbl.create 64 in
  let rec go v acc =
    if Hashtbl.mem seen v then acc
    else begin
      Hashtbl.replace seen v ();
      Array.fold_left (fun acc u -> go u acc) (v :: acc) t.fanins.(v)
    end
  in
  go v []

(* Evaluate the sub-DAG rooted at [root] with values fixed at [inputs]. *)
let eval_cone t ~root ~inputs ~values =
  let memo = Hashtbl.create 32 in
  Array.iteri (fun j u -> Hashtbl.replace memo u values.(j)) inputs;
  let rec go v =
    match Hashtbl.find_opt memo v with
    | Some b -> b
    | None ->
        let b =
          match t.kind.(v) with
          | In -> invalid_arg "Comb.cone_function: path escapes the cut"
          | Gate f -> Logic.Truthtable.eval f (Array.map go t.fanins.(v))
        in
        Hashtbl.replace memo v b;
        b
  in
  go root

let cone_function t ~root ~inputs =
  let k = Array.length inputs in
  if k > Logic.Truthtable.max_arity then invalid_arg "Comb.cone_function: arity";
  let bits = ref 0L in
  for m = 0 to (1 lsl k) - 1 do
    let values = Array.init k (fun j -> m land (1 lsl j) <> 0) in
    if eval_cone t ~root ~inputs ~values then
      bits := Int64.logor !bits (Int64.shift_left 1L m)
  done;
  Logic.Truthtable.create k !bits

let cone_bdd man t ~root ~inputs ~vars =
  if Array.length inputs <> Array.length vars then
    invalid_arg "Comb.cone_bdd: length mismatch";
  let memo = Hashtbl.create 32 in
  Array.iteri (fun j u -> Hashtbl.replace memo u (Bdd.var man vars.(j))) inputs;
  let rec go v =
    match Hashtbl.find_opt memo v with
    | Some b -> b
    | None ->
        let b =
          match t.kind.(v) with
          | In -> invalid_arg "Comb.cone_bdd: path escapes the cut"
          | Gate f -> Bdd.apply_truthtable man f (Array.map go t.fanins.(v))
        in
        Hashtbl.replace memo v b;
        b
  in
  go root

let depth t =
  let order = topo_order t in
  let d = Array.make (n t) 0 in
  Array.iter
    (fun v ->
      match t.kind.(v) with
      | In -> d.(v) <- 0
      | Gate _ ->
          d.(v) <- 1 + Array.fold_left (fun acc u -> max acc d.(u)) 0 t.fanins.(v))
    order;
  d
