type mapped = {
  comb : Comb.t;
  node_of : int array;
  luts : int;
  depth : int;
}

(* growable target network *)
type builder = {
  mutable kinds : Comb.node_kind list; (* reversed *)
  mutable fans : int array list; (* reversed *)
  mutable count : int;
  share : (Comb.node_kind * int array, int) Hashtbl.t;
}

let new_builder () = { kinds = []; fans = []; count = 0; share = Hashtbl.create 64 }

let emit_raw b kind fanins =
  let id = b.count in
  b.count <- id + 1;
  b.kinds <- kind :: b.kinds;
  b.fans <- fanins :: b.fans;
  id

(* share identical LUTs over identical fanins (never input nodes: each
   original input must stay a distinct node) *)
let emit b kind fanins =
  match kind with
  | Comb.In -> emit_raw b kind fanins
  | Comb.Gate _ -> (
      match Hashtbl.find_opt b.share (kind, fanins) with
      | Some id -> id
      | None ->
          let id = emit_raw b kind fanins in
          Hashtbl.replace b.share (kind, fanins) id;
          id)

let generate t (res : Labels.result) =
  let n = Comb.n t in
  let node_of = Array.make n (-1) in
  let b = new_builder () in
  let rec need v =
    if node_of.(v) >= 0 then node_of.(v)
    else begin
      let id =
        match t.Comb.kind.(v) with
        | Comb.In -> emit b Comb.In [||]
        | Comb.Gate _ -> (
            match res.Labels.impls.(v) with
            | None -> invalid_arg "Mapper.generate: missing implementation"
            | Some (Labels.Cut cut) ->
                let tt = Comb.cone_function t ~root:v ~inputs:cut in
                (* drop cut inputs the function does not depend on *)
                let tt, sup = Logic.Truthtable.shrink_support tt in
                let cut = Array.of_list (List.map (fun j -> cut.(j)) sup) in
                let fanins = Array.map need cut in
                emit b (Comb.Gate tt) fanins
            | Some (Labels.Resyn (tree, inputs)) ->
                let rec build = function
                  | Decomp.Decompose.Input i -> need inputs.(i)
                  | Decomp.Decompose.Lut (tt, fs) ->
                      let fanins = Array.map build fs in
                      emit b (Comb.Gate tt) fanins
                in
                build tree)
      in
      (* In nodes map uniquely; gate nodes may share LUTs *)
      node_of.(v) <- id;
      id
    end
  in
  List.iter (fun r -> ignore (need r)) t.Comb.roots;
  let kind = Array.of_list (List.rev b.kinds) in
  let fanins = Array.of_list (List.rev b.fans) in
  let roots = List.map (fun r -> node_of.(r)) t.Comb.roots in
  let comb = { Comb.kind; fanins; roots } in
  Comb.validate comb;
  let luts =
    Array.fold_left
      (fun acc k -> match k with Comb.Gate _ -> acc + 1 | Comb.In -> acc)
      0 kind
  in
  let d = Comb.depth comb in
  let depth = List.fold_left (fun acc r -> max acc d.(r)) 0 roots in
  { comb; node_of; luts; depth }

let check t mapped ~k =
  (* K-boundedness *)
  let kbound =
    Array.for_all
      (fun fi -> Array.length fi <= k)
      mapped.comb.Comb.fanins
  in
  kbound
  &&
  (* functional equivalence of every root over the original inputs *)
  let man = Bdd.new_man () in
  (* original inputs get BDD vars by their node id in t *)
  let orig_bdd = Hashtbl.create 64 in
  let rec orig v =
    match Hashtbl.find_opt orig_bdd v with
    | Some b -> b
    | None ->
        let b =
          match t.Comb.kind.(v) with
          | Comb.In -> Bdd.var man v
          | Comb.Gate f ->
              Bdd.apply_truthtable man f (Array.map orig t.Comb.fanins.(v))
        in
        Hashtbl.replace orig_bdd v b;
        b
  in
  (* mapped In nodes correspond to original In nodes via node_of *)
  let in_var = Hashtbl.create 16 in
  Array.iteri
    (fun v id ->
      if id >= 0 && t.Comb.kind.(v) = Comb.In then Hashtbl.replace in_var id v)
    mapped.node_of;
  let new_bdd = Hashtbl.create 64 in
  let rec mapped_fn v =
    match Hashtbl.find_opt new_bdd v with
    | Some b -> b
    | None ->
        let b =
          match mapped.comb.Comb.kind.(v) with
          | Comb.In -> Bdd.var man (Hashtbl.find in_var v)
          | Comb.Gate f ->
              Bdd.apply_truthtable man f
                (Array.map mapped_fn mapped.comb.Comb.fanins.(v))
        in
        Hashtbl.replace new_bdd v b;
        b
  in
  List.for_all2
    (fun r r' -> Bdd.equal (orig r) (mapped_fn r'))
    t.Comb.roots mapped.comb.Comb.roots
