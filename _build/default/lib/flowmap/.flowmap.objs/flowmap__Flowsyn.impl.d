lib/flowmap/flowsyn.ml: Array Circuit Comb Fun Graphs Hashtbl Labels List Mapper Netlist Printf
