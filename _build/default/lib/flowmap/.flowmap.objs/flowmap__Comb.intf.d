lib/flowmap/comb.mli: Bdd Logic
