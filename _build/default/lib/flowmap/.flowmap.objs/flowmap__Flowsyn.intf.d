lib/flowmap/flowsyn.mli: Circuit Comb Graphs
