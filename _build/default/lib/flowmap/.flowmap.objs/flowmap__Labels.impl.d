lib/flowmap/labels.ml: Array Bdd Comb Decomp Flow Fun Hashtbl List Logic Prelude Rat
