lib/flowmap/labels.mli: Comb Decomp
