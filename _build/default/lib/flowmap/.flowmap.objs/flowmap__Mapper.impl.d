lib/flowmap/mapper.ml: Array Bdd Comb Decomp Hashtbl Labels List Logic
