lib/flowmap/mapper.mli: Comb Labels
