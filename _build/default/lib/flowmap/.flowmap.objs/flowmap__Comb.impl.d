lib/flowmap/comb.ml: Array Bdd Graphs Hashtbl Int64 List Logic
