(** Combinational mapping problems.

    A [comb] is a DAG of gates over pseudo-inputs; it is what FlowMap and
    FlowSYN operate on.  {!Flowsyn} builds one from a sequential circuit by
    cutting at every flip-flop (each registered signal becomes an [In]) and
    reassembles the mapped result. *)

type node_kind =
  | In  (** pseudo primary input *)
  | Gate of Logic.Truthtable.t

type t = {
  kind : node_kind array;
  fanins : int array array;  (** gate fanins; [ [||] ] for [In] *)
  roots : int list;
      (** nodes whose values must be available as LUT outputs (or inputs):
          drivers of primary outputs and of registered edges *)
}

val n : t -> int
val validate : t -> unit
(** @raise Invalid_argument on cycles, bad ids, arity mismatches. *)

val topo_order : t -> int array

val cone : t -> int -> int list
(** Transitive fanin cone of a node, including the node itself. *)

val cone_function : t -> root:int -> inputs:int array -> Logic.Truthtable.t
(** Truth table of [root] as a function of the given cut [inputs]
    (at most 6), evaluated by exhaustive simulation of the sub-DAG.
    @raise Invalid_argument if some path from [root] escapes the cut. *)

val cone_bdd :
  Bdd.man -> t -> root:int -> inputs:int array -> vars:int array -> Bdd.t
(** BDD of [root] over cut [inputs] (input [j] mapped to BDD variable
    [vars.(j)]); used when the cut is wider than 6. *)

val depth : t -> int array
(** Unit-delay depth of every node ([In] nodes have depth 0). *)
