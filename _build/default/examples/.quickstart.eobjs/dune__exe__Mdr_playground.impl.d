examples/mdr_playground.ml: Array Circuit Format Graphs Netlist Prelude Retime Workloads
