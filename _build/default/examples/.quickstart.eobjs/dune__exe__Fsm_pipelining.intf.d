examples/fsm_pipelining.mli:
