examples/quickstart.mli:
