examples/quickstart.ml: Array Blif Build Circuit Format Graphs List Logic Netlist Prelude Printf Sim String Turbosyn
