examples/fig1_walkthrough.ml: Array Circuit Format Graphs Logic Netlist Prelude Printf Sim Truthtable Turbosyn
