examples/fsm_pipelining.ml: Circuit Format Netlist Option Prelude Retime Turbosyn Workloads
