examples/mdr_playground.mli:
