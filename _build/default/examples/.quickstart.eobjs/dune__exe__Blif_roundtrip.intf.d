examples/blif_roundtrip.mli:
