examples/blif_roundtrip.ml: Circuit Format Prelude Sim Turbosyn
