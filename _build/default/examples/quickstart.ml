(* Quickstart: build a small sequential circuit with the public API, run the
   three mapping algorithms (TurboSYN / TurboMap / FlowSYN-s), and print
   what the paper's Table 1 reports per circuit: minimum clock period (MDR
   ratio) and LUT count.

   Run with: dune exec examples/quickstart.exe *)

open Circuit

let () =
  (* a 4-bit accumulator with an enable: acc <- acc xor (in and en) *)
  let nl = Netlist.create ~name:"quickstart" () in
  let en = Netlist.add_pi ~name:"en" nl in
  let data = Array.init 4 (fun i -> Netlist.add_pi ~name:(Printf.sprintf "d%d" i) nl) in
  Array.iteri
    (fun i d ->
      let gated = Build.and2 ~name:(Printf.sprintf "gate%d" i) nl d en in
      let acc = Netlist.reserve_gate ~name:(Printf.sprintf "acc%d" i) nl in
      Netlist.define_gate nl acc (Logic.Truthtable.xor_all 2)
        [| (gated, 0); (acc, 1) |];
      ignore (Netlist.add_po ~name:(Printf.sprintf "q%d" i) nl ~driver:acc ~weight:0))
    data;
  Format.printf "circuit: %a@." Netlist.pp_stats (Netlist.stats nl);
  (* the clock-period lower bound of the unmapped circuit *)
  (match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Ratio r ->
      Format.printf "unmapped MDR ratio: %a@." Prelude.Rat.pp r
  | _ -> ());
  (* map with each algorithm *)
  List.iter
    (fun (name, algo) ->
      let r = Turbosyn.Synth.run algo nl in
      Format.printf
        "%-10s phi=%-5s luts=%-3d clock period=%d (pipeline latency %d)@." name
        (Prelude.Rat.to_string r.Turbosyn.Synth.phi)
        r.Turbosyn.Synth.luts r.Turbosyn.Synth.clock_period
        r.Turbosyn.Synth.latency)
    [ ("TurboSYN", `Turbosyn); ("TurboMap", `Turbomap); ("FlowSYN-s", `Flowsyn_s) ];
  (* verify the TurboSYN result against the source by simulation *)
  let r = Turbosyn.Synth.run `Turbosyn nl in
  let rng = Prelude.Rng.create 2024 in
  let ok = Sim.Equiv.mapped_equal rng nl r.Turbosyn.Synth.mapped in
  Format.printf "sequential equivalence check: %s@." (if ok then "PASS" else "FAIL");
  (* and write the mapped circuit as BLIF *)
  let blif = Blif.to_string r.Turbosyn.Synth.mapped in
  Format.printf "mapped BLIF is %d bytes (first line: %s)@." (String.length blif)
    (List.hd (String.split_on_char '\n' blif))
