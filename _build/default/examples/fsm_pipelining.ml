(* Map a generated FSM workload, then realize the minimum clock period by
   retiming + pipelining, and show the period / latency trade the paper's
   Problem 1 formalizes: pipelining removes every critical I/O path, so the
   clock period is set by the loops alone (the MDR ratio).

   Run with: dune exec examples/fsm_pipelining.exe *)

open Circuit

let () =
  let spec = Option.get (Workloads.Suite.find "bbara") in
  let nl = Workloads.Suite.build spec in
  Format.printf "workload %s: %a@." spec.Workloads.Suite.name Netlist.pp_stats
    (Netlist.stats nl);
  Format.printf "clock period as-is (no retiming): %d@."
    (Retime.Retiming.clock_period nl);
  (* pure retiming on the unmapped circuit *)
  let p_pure, _ = Retime.Retiming.min_period nl in
  Format.printf "clock period after pure retiming: %d@." p_pure;
  (* retiming + pipelining: bounded by the loops only *)
  let p_pipe, r = Retime.Pipeline.min_period nl in
  Format.printf "clock period with retiming + pipelining: %d (latency %d)@."
    p_pipe
    (Retime.Pipeline.latency nl ~r);
  (* now map with TurboSYN: the LUT network's loops are shorter, so the
     bound drops further *)
  let res = Turbosyn.Synth.run `Turbosyn nl in
  Format.printf "TurboSYN: phi = %s -> clock period %d with %d LUTs@."
    (Prelude.Rat.to_string res.Turbosyn.Synth.phi)
    res.Turbosyn.Synth.clock_period res.Turbosyn.Synth.luts;
  match res.Turbosyn.Synth.realized with
  | Some final ->
      let s = Netlist.stats final in
      Format.printf
        "final realized circuit: %d LUTs, %d FFs, period %d, added latency %d@."
        s.Netlist.n_gates s.Netlist.n_ff
        (Retime.Retiming.clock_period final)
        res.Turbosyn.Synth.latency
  | None -> assert false
