(* A walkthrough of the paper's Figure 1 idea: a target MDR ratio that
   mapping-with-retiming alone (TurboMap) cannot reach, but that sequential
   functional decomposition (TurboSYN) can.

   The circuit is a feedback cycle of 6 xor gates, each mixing in its own
   primary input, with a single register on the cycle:

       v0 = x0 ^ v5@1,   v1 = x1 ^ v0,  ...,  v5 = x5 ^ v4

   With K = 3, any LUT can cover at most 2 consecutive cycle gates (their
   side inputs use up the cut), so TurboMap needs >= 3 LUTs on the cycle:
   minimum MDR ratio 3.  TurboSYN decomposes the cycle's sequential function
   xor(x0..x5, v@1): the xors of the SIDE inputs are extracted into LUTs
   off the cycle, and the cycle collapses to one LUT reading its own output
   through the register — MDR ratio 1.  This is the 3x clock-period gap the
   paper's introduction motivates.

   Run with: dune exec examples/fig1_walkthrough.exe *)

open Circuit
open Logic

let build () =
  let nl = Netlist.create ~name:"fig1" () in
  let n = 6 in
  let xs = Array.init n (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let vs = Array.init n (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "v%d" i) nl) in
  for i = 0 to n - 1 do
    let prev = vs.((i + n - 1) mod n) in
    let w = if i = 0 then 1 else 0 in
    Netlist.define_gate nl vs.(i) (Truthtable.xor_all 2)
      [| (xs.(i), 0); (prev, w) |]
  done;
  ignore (Netlist.add_po ~name:"y" nl ~driver:vs.(n - 1) ~weight:0);
  nl

let () =
  let nl = build () in
  Format.printf "circuit: %a@." Netlist.pp_stats (Netlist.stats nl);
  (match Netlist.mdr_ratio nl with
  | Graphs.Cycle_ratio.Ratio r ->
      Format.printf "unmapped MDR ratio (trivial mapping): %a@." Prelude.Rat.pp r
  | _ -> ());
  let k = 3 in
  let opts = Turbosyn.Synth.default_options ~k () in
  let tm = Turbosyn.Synth.run ~options:opts `Turbomap nl in
  let ts = Turbosyn.Synth.run ~options:opts `Turbosyn nl in
  let fs = Turbosyn.Synth.run ~options:opts `Flowsyn_s nl in
  Format.printf "FlowSYN-s (K=%d): phi = %s, %d LUTs@." k
    (Prelude.Rat.to_string fs.Turbosyn.Synth.phi)
    fs.Turbosyn.Synth.luts;
  Format.printf "TurboMap  (K=%d): phi = %s, %d LUTs@." k
    (Prelude.Rat.to_string tm.Turbosyn.Synth.phi)
    tm.Turbosyn.Synth.luts;
  Format.printf "TurboSYN  (K=%d): phi = %s, %d LUTs (%d decompositions)@." k
    (Prelude.Rat.to_string ts.Turbosyn.Synth.phi)
    ts.Turbosyn.Synth.luts ts.Turbosyn.Synth.resyn_nodes;
  assert (Prelude.Rat.(ts.Turbosyn.Synth.phi <= tm.Turbosyn.Synth.phi));
  (* all three are correct circuits *)
  let rng = Prelude.Rng.create 1 in
  Format.printf "TurboMap result equivalent: %b@."
    (Sim.Equiv.mapped_equal rng nl tm.Turbosyn.Synth.mapped);
  Format.printf "TurboSYN result equivalent: %b@."
    (Sim.Equiv.mapped_equal rng nl ts.Turbosyn.Synth.mapped);
  (* realize the clock period by retiming + pipelining *)
  match ts.Turbosyn.Synth.realized with
  | Some final ->
      Format.printf "realized clock period %d (latency %d), final circuit: %a@."
        ts.Turbosyn.Synth.clock_period ts.Turbosyn.Synth.latency
        Netlist.pp_stats (Netlist.stats final)
  | None -> Format.printf "realization failed@."
