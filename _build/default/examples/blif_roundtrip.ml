(* Parse a BLIF circuit, map it with TurboSYN, and print the mapped BLIF —
   the CLI-style flow for users with existing netlists.

   Run with: dune exec examples/blif_roundtrip.exe *)

let source =
  {|# a tiny sequential filter: y = x ^ delayed majority of last taps
.model filter
.inputs x
.outputs y
.names x t1
1 1
.latch t1 d1
.latch d1 d2
.latch d2 d3
.names d1 d2 d3 maj
11- 1
1-1 1
-11 1
.names x maj acc nxt
11- 1
1-1 1
-11 1
.latch nxt acc
.names acc y
1 1
.end
|}

let () =
  match Circuit.Blif.parse_string source with
  | Error e ->
      Format.printf "parse error: %s@." e;
      exit 1
  | Ok nl ->
      Format.printf "parsed %s: %a@." (Circuit.Netlist.name nl)
        Circuit.Netlist.pp_stats
        (Circuit.Netlist.stats nl);
      let res = Turbosyn.Synth.run `Turbosyn nl in
      Format.printf "TurboSYN: phi=%s, %d LUTs, period %d@."
        (Prelude.Rat.to_string res.Turbosyn.Synth.phi)
        res.Turbosyn.Synth.luts res.Turbosyn.Synth.clock_period;
      let rng = Prelude.Rng.create 3 in
      Format.printf "equivalent: %b@."
        (Sim.Equiv.mapped_equal rng nl res.Turbosyn.Synth.mapped);
      print_string (Circuit.Blif.to_string res.Turbosyn.Synth.mapped)
