(* The clock-period bound itself: compute the maximum delay-to-register
   ratio of a circuit three ways (exact parametric search, Howard's policy
   iteration, float bisection) and show what retiming/pipelining does with
   it.

   Run with: dune exec examples/mdr_playground.exe *)

open Circuit

let () =
  let rng = Prelude.Rng.create 2024 in
  let nl = Workloads.Generate.mixer rng ~pis:6 ~pos:3 ~gates:150 ~ff_density:0.25 in
  let s = Netlist.stats nl in
  Format.printf "circuit: %a@." Netlist.pp_stats s;
  let n = Netlist.n nl in
  let edges = Netlist.retiming_edges nl in
  (* exact *)
  let exact, t1 = Prelude.Timer.time (fun () -> Graphs.Cycle_ratio.max_ratio ~n ~edges) in
  (match exact with
  | Graphs.Cycle_ratio.Ratio r ->
      Format.printf "exact MDR ratio:    %s   (%.2f ms)@." (Prelude.Rat.to_string r)
        (t1 *. 1e3)
  | _ -> Format.printf "no loops@.");
  (* Howard *)
  let hw =
    Array.map
      (fun e ->
        {
          Graphs.Howard.src = e.Graphs.Cycle_ratio.src;
          dst = e.Graphs.Cycle_ratio.dst;
          delay = e.Graphs.Cycle_ratio.delay;
          weight = e.Graphs.Cycle_ratio.weight;
        })
      edges
  in
  let lam, t2 = Prelude.Timer.time (fun () -> Graphs.Howard.max_ratio ~n ~edges:hw) in
  (match lam with
  | Some l -> Format.printf "howard estimate:    %.6f   (%.2f ms)@." l (t2 *. 1e3)
  | None -> ());
  (* float bisection *)
  let fb, t3 =
    Prelude.Timer.time (fun () ->
        Graphs.Cycle_ratio.max_ratio_float ~n ~edges ~epsilon:1e-6)
  in
  (match fb with
  | Graphs.Cycle_ratio.Ratio r ->
      Format.printf "bisection (1e-6):   %.6f   (%.2f ms)@." (Prelude.Rat.to_float r)
        (t3 *. 1e3)
  | _ -> ());
  (* what the bound means: pipelined retiming achieves ceil(MDR) *)
  match Retime.Pipeline.period_lower_bound nl with
  | `Period p ->
      let period, r = Retime.Pipeline.min_period nl in
      assert (period = p);
      let r = Retime.Retiming.minimize_ffs nl ~period ~r in
      let final = Retime.Retiming.apply nl ~r in
      Format.printf
        "retimed + pipelined: clock period %d (was %d), %d FFs (was %d), \
         latency %d@."
        (Retime.Retiming.clock_period final)
        (Retime.Retiming.clock_period nl)
        (Netlist.stats final).Netlist.n_ff s.Netlist.n_ff
        (Retime.Pipeline.latency nl ~r)
  | `Infinite -> Format.printf "combinational loop!@."
