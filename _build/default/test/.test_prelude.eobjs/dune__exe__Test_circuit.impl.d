test/test_circuit.ml: Alcotest Array Blif Build Circuit Filename Format Graphs List Logic Netlist Option Prelude Printf Sim Str String Sys Truthtable Verilog
