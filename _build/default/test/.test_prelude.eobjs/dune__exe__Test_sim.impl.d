test/test_sim.ml: Alcotest Array Build Circuit List Logic Netlist Prelude Retime Sim Truthtable
