test/test_retime.mli:
