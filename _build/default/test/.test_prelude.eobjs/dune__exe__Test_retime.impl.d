test/test_retime.ml: Alcotest Array Build Circuit Fun Graphs List Logic Netlist Pipeline Prelude Printf Retime Retiming
