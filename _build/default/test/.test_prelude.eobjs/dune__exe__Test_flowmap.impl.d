test/test_flowmap.ml: Alcotest Array Build Circuit Comb Flowmap Flowsyn Gen Labels List Logic Mapper Netlist Prelude Printf QCheck QCheck_alcotest Sim Test Truthtable
