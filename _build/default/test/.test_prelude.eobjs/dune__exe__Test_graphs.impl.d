test/test_graphs.ml: Alcotest Array Bellman_ford Cycle_ratio Float Gen Graphs Howard Karp List Prelude Printf QCheck QCheck_alcotest Rat Scc String Test Topo
