test/test_logic.ml: Alcotest Array Gen List Logic Prelude Printf QCheck QCheck_alcotest Test Truthtable
