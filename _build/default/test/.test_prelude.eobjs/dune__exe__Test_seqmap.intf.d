test/test_seqmap.mli:
