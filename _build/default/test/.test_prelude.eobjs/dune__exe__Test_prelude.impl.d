test/test_prelude.ml: Alcotest Array Format Fun Gen List Prelude Printf QCheck QCheck_alcotest Rat Rng String Sys Table Test Timer
