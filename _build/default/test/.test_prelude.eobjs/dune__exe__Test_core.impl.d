test/test_core.ml: Alcotest Array Build Circuit Format Graphs List Logic Netlist Option Prelude Printf Rat Retime Rng Seqmap Sim String Truthtable Turbosyn Workloads
