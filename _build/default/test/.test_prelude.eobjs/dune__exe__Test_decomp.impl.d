test/test_decomp.ml: Alcotest Array Bdd Classes Decomp Decompose Fun Gen List Logic Prelude Printf QCheck QCheck_alcotest Rat Rng String Test Truthtable
