test/test_seqmap.ml: Alcotest Array Build Circuit Expanded Format Graphs Label_engine List Logic Mapgen Netlist Option Prelude Printf Rat Retime Rng Seqmap Sim Truthtable Turbomap
