test/test_bdd.ml: Alcotest Array Bdd Fun Gen List Logic Prelude Printf QCheck QCheck_alcotest Test Truthtable
