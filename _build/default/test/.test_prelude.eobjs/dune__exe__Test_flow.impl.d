test/test_flow.ml: Alcotest Array Flow Fun Gen Kcut List Maxflow Printf QCheck QCheck_alcotest Queue String Test
