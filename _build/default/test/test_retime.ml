(* Tests for retiming and pipelining, cross-checked against brute-force lag
   enumeration on small circuits. *)

open Circuit
open Retime

(* chain of [k] unit gates from a PI to a PO, no registers *)
let chain k =
  let nl = Netlist.create ~name:"chain" () in
  let x = Netlist.add_pi ~name:"x" nl in
  let prev = ref x in
  for _ = 1 to k do
    prev := Build.buf nl !prev
  done;
  ignore (Netlist.add_po ~name:"y" nl ~driver:!prev ~weight:0);
  nl

(* ring of [k] gates with [w] registers spread on the loop, tapped to a PO *)
let ring k w =
  let nl = Netlist.create ~name:"ring" () in
  let x = Netlist.add_pi ~name:"x" nl in
  let first = Netlist.reserve_gate ~name:"g0" nl in
  let prev = ref first in
  for i = 1 to k - 1 do
    let wi = if i <= w then 1 else 0 in
    prev := Build.buf ~name:(Printf.sprintf "g%d" i) ~w:wi nl !prev
  done;
  (* close the loop through an xor with the PI *)
  Netlist.define_gate nl first (Logic.Truthtable.xor_all 2)
    [| (x, 0); (!prev, if w >= k then 1 else 0) |];
  ignore (Netlist.add_po ~name:"y" nl ~driver:!prev ~weight:0);
  nl

let test_clock_period_chain () =
  Alcotest.(check int) "chain 5" 5 (Retiming.clock_period (chain 5));
  Alcotest.(check int) "chain 1" 1 (Retiming.clock_period (chain 1))

let test_clock_period_registered () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let a = Build.buf nl x in
  let b = Build.buf ~w:1 nl a in
  let c = Build.buf nl b in
  ignore (Netlist.add_po nl ~driver:c ~weight:0);
  (* paths: x-a (1), b-c (2 gates? b then c): delta(c)=2 *)
  Alcotest.(check int) "split by register" 2 (Retiming.clock_period nl)

let test_legal_apply () =
  let nl = ring 4 2 in
  let n = Netlist.n nl in
  let r = Array.make n 0 in
  Alcotest.(check bool) "zero legal" true (Retiming.legal nl ~r);
  let nl2 = Retiming.apply nl ~r in
  Alcotest.(check int) "identity retiming keeps period"
    (Retiming.clock_period nl) (Retiming.clock_period nl2);
  (* an illegal retiming: pull a register off an edge that has none *)
  (match Netlist.find_by_name nl "g1" with
  | Some g ->
      let r_bad = Array.make n 0 in
      r_bad.(g) <- -1;
      (* g1's fanin edge g0 -> g1 has weight 1, output edge weight 0;
         r(g1) = -1 makes the outgoing edge weight -1? incoming 1-1=0 ok,
         outgoing w + r(next) - r(g1) = 0 + 0 + 1 = 1: actually legal;
         use +1 against the zero-weight incoming edge of the PO instead *)
      ignore r_bad
  | None -> ());
  let r_bad = Array.make n 0 in
  (* PO driver g3 feeds PO with weight 0; lowering its lag makes it -1 *)
  (match Netlist.find_by_name nl "g3" with
  | Some g ->
      r_bad.(g) <- 1;
      (* outgoing edge to PO: 0 + 0 - 1 = -1 -> illegal *)
      Alcotest.(check bool) "illegal detected" false (Retiming.legal nl ~r:r_bad);
      Alcotest.check_raises "apply rejects"
        (Invalid_argument "Retiming.apply: illegal retiming") (fun () ->
          ignore (Retiming.apply nl ~r:r_bad))
  | None -> Alcotest.fail "no g3")

let test_min_period_ring () =
  (* 4 gates, 2 registers on the loop: optimum period 2 *)
  let nl = ring 4 2 in
  let p0 = Retiming.clock_period nl in
  Alcotest.(check bool) "initial worse" true (p0 > 2);
  let p, r = Retiming.min_period nl in
  Alcotest.(check int) "optimal period 2" 2 p;
  let nl2 = Retiming.apply nl ~r in
  Alcotest.(check int) "achieved" 2 (Retiming.clock_period nl2);
  (* PIs and POs stay put *)
  List.iter (fun v -> Alcotest.(check int) "pi lag" 0 r.(v)) (Netlist.pis nl);
  List.iter (fun v -> Alcotest.(check int) "po lag" 0 r.(v)) (Netlist.pos nl)

let test_min_period_chain_pure () =
  (* pure retiming cannot improve a register-free chain *)
  let nl = chain 4 in
  let p, _ = Retiming.min_period nl in
  Alcotest.(check int) "still 4" 4 p

(* brute force minimum period over small lag ranges *)
let brute_min_period nl range =
  let n = Netlist.n nl in
  let fixed =
    Array.init n (fun v ->
        match Netlist.kind nl v with
        | Netlist.Pi | Netlist.Po -> true
        | Netlist.Gate _ -> false)
  in
  let free = List.filter (fun v -> not fixed.(v)) (List.init n Fun.id) in
  let best = ref max_int in
  let r = Array.make n 0 in
  let rec go = function
    | [] ->
        if Retiming.legal nl ~r then begin
          let nl2 = Retiming.apply nl ~r in
          match Retiming.delta nl2 ~weight:(fun v j -> snd (Netlist.fanins nl2 v).(j)) with
          | Some dl -> best := min !best (Array.fold_left max 0 dl)
          | None -> ()
        end
    | v :: rest ->
        for lag = -range to range do
          r.(v) <- lag;
          go rest
        done;
        r.(v) <- 0
  in
  go free;
  !best

let test_min_period_matches_brute_force () =
  let rng = Prelude.Rng.create 99 in
  for iter = 1 to 20 do
    (* random small sequential circuit: 4 gates, random weights *)
    let nl = Netlist.create () in
    let x = Netlist.add_pi nl in
    let nodes = ref [ x ] in
    for _ = 1 to 4 do
      let arr = Array.of_list !nodes in
      let a = Prelude.Rng.pick rng arr and b = Prelude.Rng.pick rng arr in
      let g =
        Build.xor2 ~wa:(Prelude.Rng.int rng 2) ~wb:(Prelude.Rng.int rng 2) nl a b
      in
      nodes := g :: !nodes
    done;
    (* feedback edge to make it sequential: rewire first gate *)
    ignore (Netlist.add_po nl ~driver:(List.hd !nodes) ~weight:0);
    let p, r = Retiming.min_period nl in
    let brute = brute_min_period nl 2 in
    Alcotest.(check int) (Printf.sprintf "iter %d" iter) brute p;
    let nl2 = Retiming.apply nl ~r in
    Alcotest.(check int)
      (Printf.sprintf "achieved %d" iter)
      p
      (Retiming.clock_period nl2)
  done

let test_pipeline_chain () =
  let nl = chain 5 in
  (match Pipeline.period_lower_bound nl with
  | `Period p -> Alcotest.(check int) "acyclic bound 1" 1 p
  | `Infinite -> Alcotest.fail "not infinite");
  let p, r = Pipeline.min_period nl in
  Alcotest.(check int) "pipelined to 1" 1 p;
  let nl2 = Retiming.apply nl ~r in
  Alcotest.(check int) "achieved 1" 1 (Retiming.clock_period nl2);
  (* 5 gates at period 1 need 4 register stages between them; the PO reads
     the last gate combinationally *)
  Alcotest.(check int) "latency 4" 4 (Pipeline.latency nl ~r)

let test_pipeline_ring () =
  (* loop of 4 gates / 2 FFs: loop bound ceil(4/2) = 2 even with pipelining *)
  let nl = ring 4 2 in
  let p, r = Pipeline.min_period nl in
  Alcotest.(check int) "loop bound 2" 2 p;
  let nl2 = Retiming.apply nl ~r in
  Alcotest.(check bool) "achieved at most 2" true (Retiming.clock_period nl2 <= 2);
  Alcotest.(check bool) "below bound impossible" true
    (Pipeline.retime_to_period nl ~period:1 = None)

let test_pipeline_comb_loop () =
  let nl = Netlist.create () in
  let a = Netlist.reserve_gate nl in
  let b = Build.buf nl a in
  Netlist.define_gate nl a (Logic.Truthtable.var 1 0) [| (b, 0) |];
  ignore (Netlist.add_po nl ~driver:b ~weight:0);
  Alcotest.(check bool) "infinite" true (Pipeline.period_lower_bound nl = `Infinite);
  Alcotest.check_raises "min_period raises"
    (Invalid_argument "Pipeline.min_period: combinational loop") (fun () ->
      ignore (Pipeline.min_period nl))

let test_pipeline_matches_mdr () =
  let rng = Prelude.Rng.create 7 in
  for iter = 1 to 20 do
    let nl = Netlist.create () in
    let x = Netlist.add_pi nl in
    let nodes = ref [ x ] in
    let gates = ref [] in
    for _ = 1 to 6 do
      let arr = Array.of_list !nodes in
      let a = Prelude.Rng.pick rng arr and b = Prelude.Rng.pick rng arr in
      let g = Build.xor2 ~wa:(Prelude.Rng.int rng 2) nl a b in
      nodes := g :: !nodes;
      gates := g :: !gates
    done;
    (* add one feedback with a register to make loops likely *)
    (match !gates with
    | last :: _ ->
        let first = List.nth !gates (List.length !gates - 1) in
        Netlist.set_fanins nl first
          (let f = Netlist.fanins nl first in
           [| f.(0); (last, 1) |])
    | [] -> ());
    ignore (Netlist.add_po nl ~driver:(List.hd !nodes) ~weight:0);
    match Pipeline.period_lower_bound nl with
    | `Infinite -> ()
    | `Period p ->
        let expect =
          match Netlist.mdr_ratio nl with
          | Graphs.Cycle_ratio.Ratio r -> max 1 (Prelude.Rat.ceil r)
          | Graphs.Cycle_ratio.No_cycle -> 1
          | Graphs.Cycle_ratio.Infinite -> -1
        in
        Alcotest.(check int) (Printf.sprintf "bound matches mdr %d" iter) expect p;
        let p2, r = Pipeline.min_period nl in
        Alcotest.(check int) "constructed" p p2;
        let nl2 = Retiming.apply nl ~r in
        Alcotest.(check bool)
          (Printf.sprintf "achieved %d" iter)
          true
          (Retiming.clock_period nl2 <= p)
  done

let test_ff_count () =
  let nl = ring 4 2 in
  let r0 = Array.make (Netlist.n nl) 0 in
  let s = Netlist.stats nl in
  Alcotest.(check int) "matches stats" s.Netlist.n_ff (Retiming.ff_count nl ~r:r0)

let test_minimize_ffs () =
  let rng = Prelude.Rng.create 21 in
  for _ = 1 to 10 do
    (* random sequential circuit, pipelined to its loop bound; FF
       minimization must not break legality or the period and must not
       increase the register count *)
    let nl = Netlist.create () in
    let x = Netlist.add_pi nl in
    let nodes = ref [ x ] in
    for _ = 1 to 8 do
      let arr = Array.of_list !nodes in
      let g =
        Build.xor2 ~wa:(Prelude.Rng.int rng 2) ~wb:(Prelude.Rng.int rng 2) nl
          (Prelude.Rng.pick rng arr) (Prelude.Rng.pick rng arr)
      in
      nodes := g :: !nodes
    done;
    ignore (Netlist.add_po nl ~driver:(List.hd !nodes) ~weight:0);
    match Pipeline.period_lower_bound nl with
    | `Infinite -> ()
    | `Period _ ->
        let period, r = Pipeline.min_period nl in
        let before = Retiming.ff_count nl ~r in
        let r' = Retiming.minimize_ffs nl ~period ~r in
        Alcotest.(check bool) "legal" true (Retiming.legal nl ~r:r');
        let after = Retiming.ff_count nl ~r:r' in
        Alcotest.(check bool)
          (Printf.sprintf "ffs %d <= %d" after before)
          true (after <= before);
        let applied = Retiming.apply nl ~r:r' in
        Alcotest.(check bool) "period kept" true
          (Retiming.clock_period applied <= period);
        (* PO lags untouched: latency identical *)
        Alcotest.(check int) "latency unchanged"
          (Pipeline.latency nl ~r)
          (Pipeline.latency nl ~r:r')
  done

let () =
  Alcotest.run "retime"
    [
      ( "retiming",
        [
          Alcotest.test_case "clock period chain" `Quick test_clock_period_chain;
          Alcotest.test_case "clock period registered" `Quick
            test_clock_period_registered;
          Alcotest.test_case "legal/apply" `Quick test_legal_apply;
          Alcotest.test_case "min period ring" `Quick test_min_period_ring;
          Alcotest.test_case "min period chain" `Quick test_min_period_chain_pure;
          Alcotest.test_case "matches brute force" `Quick
            test_min_period_matches_brute_force;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "chain" `Quick test_pipeline_chain;
          Alcotest.test_case "ring" `Quick test_pipeline_ring;
          Alcotest.test_case "combinational loop" `Quick test_pipeline_comb_loop;
          Alcotest.test_case "matches mdr" `Quick test_pipeline_matches_mdr;
        ] );
      ( "ff-minimization",
        [
          Alcotest.test_case "ff count" `Quick test_ff_count;
          Alcotest.test_case "minimize" `Quick test_minimize_ffs;
        ] );
    ]
