(* Tests for the TurboSYN top-level library: area recovery and the full
   three-algorithm flow. *)

open Prelude
open Logic
open Circuit


(* --- area passes --- *)

let test_dedup_merges () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi ~name:"x" nl in
  let y = Netlist.add_pi ~name:"y" nl in
  let a = Build.and2 nl x y in
  let b = Build.and2 nl x y in
  (* two identical ANDs feeding an OR *)
  let o = Build.or2 nl a b in
  ignore (Netlist.add_po ~name:"z" nl ~driver:o ~weight:0);
  let out = Turbosyn.Area.dedup nl in
  (* a == b merged; or(a,a) stays a 2-input gate reading one driver twice *)
  Alcotest.(check int) "two gates left" 2 (List.length (Netlist.gates out));
  let rng = Rng.create 1 in
  Alcotest.(check bool) "equivalent" true (Sim.Equiv.io_equal rng nl out)

let test_dedup_removes_dead () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi ~name:"x" nl in
  let live = Build.not_ nl x in
  let _dead = Build.and2 nl x x in
  ignore (Netlist.add_po ~name:"z" nl ~driver:live ~weight:0);
  let out = Turbosyn.Area.dedup nl in
  Alcotest.(check int) "dead gate dropped" 1 (List.length (Netlist.gates out))

let test_dedup_keeps_weights_distinct () =
  let nl = Netlist.create () in
  let x = Netlist.add_pi ~name:"x" nl in
  let a = Build.buf ~w:1 nl x in
  let b = Build.buf ~w:2 nl x in
  ignore (Netlist.add_po nl ~driver:a ~weight:0);
  ignore (Netlist.add_po nl ~driver:b ~weight:0);
  let out = Turbosyn.Area.dedup nl in
  Alcotest.(check int) "different delays kept" 2 (List.length (Netlist.gates out))

let test_pack_absorbs_chain () =
  (* not(not(x)) with single fanouts collapses into one LUT *)
  let nl = Netlist.create () in
  let x = Netlist.add_pi ~name:"x" nl in
  let a = Build.not_ nl x in
  let b = Build.not_ nl a in
  ignore (Netlist.add_po ~name:"z" nl ~driver:b ~weight:0);
  let out = Turbosyn.Area.pack nl ~k:4 in
  Alcotest.(check int) "one lut" 1 (List.length (Netlist.gates out));
  let rng = Rng.create 2 in
  Alcotest.(check bool) "equivalent" true (Sim.Equiv.io_equal rng nl out)

let test_pack_respects_k () =
  (* two 3-input gates feeding a 2-input gate: merged support 6 > k=4 *)
  let nl = Netlist.create () in
  let pis = Array.init 6 (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let g1 = Netlist.add_gate nl (Truthtable.xor_all 3) [| (pis.(0), 0); (pis.(1), 0); (pis.(2), 0) |] in
  let g2 = Netlist.add_gate nl (Truthtable.xor_all 3) [| (pis.(3), 0); (pis.(4), 0); (pis.(5), 0) |] in
  let o = Build.and2 nl g1 g2 in
  ignore (Netlist.add_po ~name:"z" nl ~driver:o ~weight:0);
  let out = Turbosyn.Area.pack nl ~k:4 in
  (* absorbing one xor3 gives a 4-input LUT (fits k=4); the second would
     need 6 inputs, so exactly one merge happens *)
  Alcotest.(check int) "one merge at k=4" 2 (List.length (Netlist.gates out));
  let out6 = Turbosyn.Area.pack nl ~k:6 in
  Alcotest.(check int) "full merge at k=6" 1 (List.length (Netlist.gates out6));
  let rng = Rng.create 3 in
  Alcotest.(check bool) "equivalent" true (Sim.Equiv.io_equal rng nl out6)

let test_pack_respects_registers () =
  (* the intermediate signal is read through a register: cannot be packed *)
  let nl = Netlist.create () in
  let x = Netlist.add_pi ~name:"x" nl in
  let a = Build.not_ nl x in
  let b = Build.buf ~w:1 nl a in
  ignore (Netlist.add_po ~name:"z" nl ~driver:b ~weight:0);
  let out = Turbosyn.Area.pack nl ~k:4 in
  Alcotest.(check int) "register blocks packing" 2
    (List.length (Netlist.gates out))

let test_reduce_random_equivalence () =
  let rng = Rng.create 77 in
  for _ = 1 to 12 do
    let nl =
      Workloads.Generate.mixer rng ~pis:3 ~pos:2 ~gates:20 ~ff_density:0.2
    in
    let out = Turbosyn.Area.reduce nl ~k:5 in
    Alcotest.(check bool) "reduced equivalent" true
      (Sim.Equiv.io_equal ~cycles:32 ~runs:3 rng nl out);
    Alcotest.(check bool) "not larger" true
      (List.length (Netlist.gates out) <= List.length (Netlist.gates nl));
    (* MDR must not get worse *)
    match (Netlist.mdr_ratio nl, Netlist.mdr_ratio out) with
    | Graphs.Cycle_ratio.Ratio before, Graphs.Cycle_ratio.Ratio after ->
        Alcotest.(check bool) "mdr not worse" true Rat.(after <= before)
    | _, Graphs.Cycle_ratio.No_cycle -> ()
    | a, b ->
        Alcotest.failf "unexpected mdr results %b %b"
          (a = Graphs.Cycle_ratio.Infinite)
          (b = Graphs.Cycle_ratio.Infinite)
  done

(* --- full flow --- *)

let small_fsm () =
  let rng = Rng.create 41 in
  Workloads.Generate.fsm rng ~pis:3 ~pos:2 ~gates:24 ~ffs:3

let test_run_all_algorithms () =
  let nl = small_fsm () in
  let opts = Turbosyn.Synth.default_options ~k:4 () in
  let rng = Rng.create 7 in
  let results =
    List.map
      (fun algo -> Turbosyn.Synth.run ~options:opts algo nl)
      [ `Turbosyn; `Turbomap; `Flowsyn_s ]
  in
  List.iter
    (fun r ->
      Alcotest.(check (list string)) "valid mapped" []
        (List.map
           (Format.asprintf "%a" Netlist.pp_error)
           (Netlist.validate ~k:4 r.Turbosyn.Synth.mapped));
      Alcotest.(check bool) "luts positive" true (r.Turbosyn.Synth.luts > 0);
      Alcotest.(check bool) "area never grows" true
        (r.Turbosyn.Synth.luts <= r.Turbosyn.Synth.luts_before_area);
      Alcotest.(check bool) "realized" true (r.Turbosyn.Synth.realized <> None);
      (match r.Turbosyn.Synth.realized with
      | Some real ->
          Alcotest.(check int) "period achieved" r.Turbosyn.Synth.clock_period
            (Retime.Retiming.clock_period real)
      | None -> ());
      (* mapped circuits are equivalent to the source (consistent-initial
         -state equivalence) *)
      Alcotest.(check bool) "mapped equal" true
        (Sim.Equiv.mapped_equal ~runs:2 ~cycles:24 ~warmup:32 rng nl
           r.Turbosyn.Synth.mapped))
    results;
  (* ordering: TurboSYN <= TurboMap on phi *)
  match results with
  | [ ts; tm; _fs ] ->
      Alcotest.(check bool)
        (Format.asprintf "ts %a <= tm %a" Rat.pp ts.Turbosyn.Synth.phi Rat.pp
           tm.Turbosyn.Synth.phi)
        true
        Rat.(ts.Turbosyn.Synth.phi <= tm.Turbosyn.Synth.phi)
  | _ -> Alcotest.fail "three results"

(* A ring of 9 xor gates (each with its own PI) and 3 registers clustered
   on consecutive edges.  FlowSYN-s must map the 7-gate register-free
   segment and two 1-gate segments separately (5 LUTs on the loop, MDR
   5/3); TurboMap/TurboSYN can pack 3 chain gates per 4-LUT regardless of
   the register positions (3 LUTs, MDR 1). *)
let fragmented_ring () =
  let nl = Netlist.create ~name:"frag" () in
  let g = 9 in
  let pis = Array.init g (fun i -> Netlist.add_pi ~name:(Printf.sprintf "x%d" i) nl) in
  let gates = Array.init g (fun i -> Netlist.reserve_gate ~name:(Printf.sprintf "g%d" i) nl) in
  for i = 0 to g - 1 do
    let w = if i < 3 then 1 else 0 in
    Netlist.define_gate nl gates.(i) (Truthtable.xor_all 2)
      [| (pis.(i), 0); (gates.((i + g - 1) mod g), w) |]
  done;
  ignore (Netlist.add_po ~name:"y" nl ~driver:gates.(g - 1) ~weight:0);
  nl

let test_turbosyn_beats_flowsyn_on_fragmented_loop () =
  let nl = fragmented_ring () in
  let opts = Turbosyn.Synth.default_options ~k:4 () in
  let ts = Turbosyn.Synth.run ~options:opts `Turbosyn nl in
  let tm = Turbosyn.Synth.run ~options:opts `Turbomap nl in
  let fs = Turbosyn.Synth.run ~options:opts `Flowsyn_s nl in
  Alcotest.(check bool)
    (Format.asprintf "turbomap %a beats flowsyn-s %a" Rat.pp
       tm.Turbosyn.Synth.phi Rat.pp fs.Turbosyn.Synth.phi)
    true
    Rat.(tm.Turbosyn.Synth.phi < fs.Turbosyn.Synth.phi);
  Alcotest.(check bool) "turbosyn no worse than turbomap" true
    Rat.(ts.Turbosyn.Synth.phi <= tm.Turbosyn.Synth.phi);
  (* TurboSYN reaches at least ratio 1 (and can go below by unrolling the
     whole cycle into a multi-register self-loop) *)
  Alcotest.(check bool) "turbosyn reaches 1 or better" true
    Rat.(ts.Turbosyn.Synth.phi <= Rat.one);
  (* and TurboSYN must never be worse than FlowSYN-s on random circuits *)
  let rng = Rng.create 99 in
  for _ = 1 to 3 do
    let nl = Workloads.Generate.mixer rng ~pis:3 ~pos:2 ~gates:15 ~ff_density:0.3 in
    let ts = Turbosyn.Synth.run ~options:opts `Turbosyn nl in
    let fs = Turbosyn.Synth.run ~options:opts `Flowsyn_s nl in
    Alcotest.(check bool) "never worse on phi" true
      Rat.(ts.Turbosyn.Synth.phi <= fs.Turbosyn.Synth.phi)
  done

let test_relax_saves_area () =
  (* the fig1-style cycle: TurboSYN needs its decomposition on the cycle
     nodes but not elsewhere; relaxation must keep phi while never adding
     LUTs, and the result must stay correct *)
  let nl = fragmented_ring () in
  let opts = Seqmap.Label_engine.default_options ~k:4 in
  let opts = { opts with Seqmap.Label_engine.resynthesize = true } in
  let mapped, report, impls = Seqmap.Turbomap.map_full ~options:opts nl ~k:4 in
  let relaxed_nl, n_relaxed = Turbosyn.Relax.relax nl ~impls ~phi:report.Seqmap.Turbomap.phi in
  Alcotest.(check bool) "relaxation count sane" true (n_relaxed >= 0);
  (match Netlist.mdr_ratio relaxed_nl with
  | Graphs.Cycle_ratio.Ratio r ->
      Alcotest.(check bool) "phi preserved" true
        Rat.(r <= report.Seqmap.Turbomap.phi)
  | Graphs.Cycle_ratio.No_cycle -> ()
  | Graphs.Cycle_ratio.Infinite -> Alcotest.fail "combinational loop");
  Alcotest.(check bool) "not larger than unrelaxed" true
    (List.length (Netlist.gates relaxed_nl)
    <= List.length (Netlist.gates mapped) + 0);
  let rng = Rng.create 12 in
  Alcotest.(check bool) "relaxed mapping equivalent" true
    (Sim.Equiv.mapped_equal rng nl relaxed_nl)

let test_multi_output_never_worse () =
  (* multi-output decomposition can only widen the search: phi never gets
     worse, results stay equivalent *)
  let rng = Rng.create 71 in
  for _ = 1 to 3 do
    let nl = Workloads.Generate.mixer rng ~pis:3 ~pos:2 ~gates:16 ~ff_density:0.3 in
    let base = Turbosyn.Synth.default_options ~k:4 () in
    let single = Turbosyn.Synth.run ~options:base `Turbosyn nl in
    let multi =
      Turbosyn.Synth.run
        ~options:{ base with Turbosyn.Synth.multi_output = true }
        `Turbosyn nl
    in
    Alcotest.(check bool)
      (Format.asprintf "multi %a <= single %a" Rat.pp
         multi.Turbosyn.Synth.phi Rat.pp single.Turbosyn.Synth.phi)
      true
      Rat.(multi.Turbosyn.Synth.phi <= single.Turbosyn.Synth.phi);
    Alcotest.(check bool) "multi result equivalent" true
      (Sim.Equiv.mapped_equal ~runs:2 ~cycles:24 rng nl multi.Turbosyn.Synth.mapped)
  done

let test_outputs_consumable () =
  (* mapped results survive BLIF and Verilog emission and BLIF reparse *)
  let rng = Rng.create 72 in
  let nl = Workloads.Generate.fsm rng ~pis:3 ~pos:2 ~gates:20 ~ffs:3 in
  let r = Turbosyn.Synth.run ~options:(Turbosyn.Synth.default_options ~k:4 ()) `Turbosyn nl in
  let blif = Circuit.Blif.to_string r.Turbosyn.Synth.mapped in
  (match Circuit.Blif.parse_string blif with
  | Error e -> Alcotest.failf "mapped BLIF reparse: %s" e
  | Ok back ->
      Alcotest.(check bool) "roundtrip equal" true
        (Circuit.Blif.roundtrip_equal r.Turbosyn.Synth.mapped back));
  let v = Circuit.Verilog.to_string r.Turbosyn.Synth.mapped in
  Alcotest.(check bool) "verilog nonempty" true (String.length v > 100)

(* --- workloads --- *)

let test_suite_builds () =
  List.iter
    (fun spec ->
      let nl = Workloads.Suite.build spec in
      let s = Netlist.stats nl in
      Alcotest.(check string) "named" spec.Workloads.Suite.name (Netlist.name nl);
      Alcotest.(check (list string)) "valid" []
        (List.map (Format.asprintf "%a" Netlist.pp_error) (Netlist.validate ~k:4 nl));
      Alcotest.(check bool)
        (Printf.sprintf "%s gate count %d ~ %d" spec.Workloads.Suite.name
           s.Netlist.n_gates spec.Workloads.Suite.gates)
        true
        (abs (s.Netlist.n_gates - spec.Workloads.Suite.gates)
        <= (spec.Workloads.Suite.gates / 3) + 8);
      Alcotest.(check bool) "has registers" true (s.Netlist.n_ff > 0);
      (* sequential benchmarks must have loops (MDR defined) *)
      match Netlist.mdr_ratio nl with
      | Graphs.Cycle_ratio.Ratio _ -> ()
      | Graphs.Cycle_ratio.No_cycle ->
          Alcotest.failf "%s has no loops" spec.Workloads.Suite.name
      | Graphs.Cycle_ratio.Infinite ->
          Alcotest.failf "%s has a combinational loop" spec.Workloads.Suite.name)
    Workloads.Suite.table1

let test_suite_deterministic () =
  let spec = Option.get (Workloads.Suite.find "bbara") in
  let a = Workloads.Suite.build spec and b = Workloads.Suite.build spec in
  Alcotest.(check bool) "identical builds" true (Circuit.Blif.roundtrip_equal a b)

let test_generators_simulate () =
  let rng = Rng.create 31 in
  let lfsr = Workloads.Generate.lfsr rng ~bits:8 ~taps:3 in
  let outs =
    Sim.Simulator.run lfsr (Array.init 40 (fun i -> [| i = 0 |]))
  in
  Alcotest.(check bool) "lfsr nonconstant" true
    (Array.exists (fun o -> o.(0)) outs);
  let counter = Workloads.Generate.counter ~bits:4 in
  let outs = Sim.Simulator.run counter (Array.make 20 [| true |]) in
  (* msb of a 4-bit counter goes high at step 8 (value 8 reached) *)
  Alcotest.(check bool) "msb low early" false outs.(3).(0);
  Alcotest.(check bool) "msb high at 8" true outs.(8).(0)

let test_crc_and_traffic () =
  (* CRC: a single 1 injected into an all-zero register ring must reappear
     at the output within [bits] cycles and keep the state non-zero *)
  let crc = Workloads.Generate.crc ~bits:8 ~taps:[ 3; 5 ] in
  let outs =
    Sim.Simulator.run crc (Array.init 24 (fun i -> [| i = 0 |]))
  in
  Alcotest.(check bool) "crc output becomes active" true
    (Array.exists (fun o -> o.(0)) outs);
  (match Netlist.mdr_ratio crc with
  | Graphs.Cycle_ratio.Ratio r ->
      (* the tightest loop (msb tap) has one more gate than registers *)
      Alcotest.(check bool) "crc mdr <= 2" true Rat.(r <= Rat.of_int 2)
  | _ -> Alcotest.fail "crc must have loops");
  (* traffic FSM: from reset (G1) with cross traffic, green2 must
     eventually rise, and green1 again after that *)
  let tl = Workloads.Generate.traffic () in
  let inputs = Array.init 16 (fun _ -> [| true; true |]) in
  let outs = Sim.Simulator.run tl inputs in
  let idx_green2 = 2 in
  Alcotest.(check bool) "green2 reached" true
    (Array.exists (fun o -> o.(idx_green2)) outs);
  (* the controller is a real sequential circuit for the mapper *)
  let r = Turbosyn.Synth.run ~options:(Turbosyn.Synth.default_options ~k:4 ()) `Turbosyn tl in
  Alcotest.(check bool) "traffic maps and verifies" true
    (Sim.Equiv.mapped_equal (Rng.create 5) tl r.Turbosyn.Synth.mapped)

let test_find () =
  Alcotest.(check bool) "bbara found" true (Workloads.Suite.find "bbara" <> None);
  Alcotest.(check bool) "big4k found" true (Workloads.Suite.find "big4k" <> None);
  Alcotest.(check bool) "missing" true (Workloads.Suite.find "nope" = None)

let () =
  Alcotest.run "core"
    [
      ( "area",
        [
          Alcotest.test_case "dedup merges" `Quick test_dedup_merges;
          Alcotest.test_case "dedup dead" `Quick test_dedup_removes_dead;
          Alcotest.test_case "dedup weights" `Quick test_dedup_keeps_weights_distinct;
          Alcotest.test_case "pack chain" `Quick test_pack_absorbs_chain;
          Alcotest.test_case "pack k" `Quick test_pack_respects_k;
          Alcotest.test_case "pack registers" `Quick test_pack_respects_registers;
          Alcotest.test_case "reduce equivalence" `Slow test_reduce_random_equivalence;
        ] );
      ( "flow",
        [
          Alcotest.test_case "all algorithms" `Slow test_run_all_algorithms;
          Alcotest.test_case "turbosyn vs flowsyn" `Slow
            test_turbosyn_beats_flowsyn_on_fragmented_loop;
          Alcotest.test_case "label relaxation" `Slow test_relax_saves_area;
          Alcotest.test_case "multi-output flow" `Slow test_multi_output_never_worse;
          Alcotest.test_case "emission" `Quick test_outputs_consumable;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "suite builds" `Slow test_suite_builds;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
          Alcotest.test_case "generators simulate" `Quick test_generators_simulate;
          Alcotest.test_case "crc and traffic" `Slow test_crc_and_traffic;
          Alcotest.test_case "find" `Quick test_find;
        ] );
    ]
