(* Tests for the logic library: truth tables. *)

open Logic

let tt = Alcotest.testable Truthtable.pp Truthtable.equal

let t_and = Truthtable.and_all 2
let t_or = Truthtable.or_all 2
let t_xor = Truthtable.xor_all 2

let test_consts () =
  Alcotest.(check int) "const0 ones" 0 (Truthtable.count_ones (Truthtable.const0 3));
  Alcotest.(check int) "const1 ones" 8 (Truthtable.count_ones (Truthtable.const1 3));
  Alcotest.(check (option bool)) "is_const 0" (Some false)
    (Truthtable.is_const (Truthtable.const0 4));
  Alcotest.(check (option bool)) "is_const 1" (Some true)
    (Truthtable.is_const (Truthtable.const1 6));
  Alcotest.(check (option bool)) "var not const" None
    (Truthtable.is_const (Truthtable.var 2 0))

let test_var_eval () =
  for arity = 1 to 6 do
    for j = 0 to arity - 1 do
      let v = Truthtable.var arity j in
      for m = 0 to (1 lsl arity) - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "var %d/%d on %d" j arity m)
          (m land (1 lsl j) <> 0)
          (Truthtable.eval_bits v m)
      done
    done
  done

let test_gates () =
  let check name f a b expect =
    let inp = [| a; b |] in
    Alcotest.(check bool) name expect (Truthtable.eval f inp)
  in
  check "and 11" t_and true true true;
  check "and 10" t_and true false false;
  check "or 00" t_or false false false;
  check "or 01" t_or false true true;
  check "xor 11" t_xor true true false;
  check "xor 01" t_xor false true true;
  check "nand 11" (Truthtable.nand (Truthtable.var 2 0) (Truthtable.var 2 1))
    true true false;
  check "nor 00" (Truthtable.nor (Truthtable.var 2 0) (Truthtable.var 2 1))
    false false true;
  check "xnor 11" (Truthtable.xnor (Truthtable.var 2 0) (Truthtable.var 2 1))
    true true true

let test_ite () =
  let c = Truthtable.var 3 0
  and a = Truthtable.var 3 1
  and b = Truthtable.var 3 2 in
  let f = Truthtable.ite c a b in
  for m = 0 to 7 do
    let cv = m land 1 <> 0 and av = m land 2 <> 0 and bv = m land 4 <> 0 in
    Alcotest.(check bool) "ite" (if cv then av else bv) (Truthtable.eval_bits f m)
  done

let test_cofactor () =
  let f = Truthtable.xor_all 3 in
  let f1 = Truthtable.cofactor f 1 true in
  for m = 0 to 7 do
    let m' = m lor 2 in
    Alcotest.(check bool) "cofactor fixes var"
      (Truthtable.eval_bits f m')
      (Truthtable.eval_bits f1 m)
  done;
  Alcotest.(check bool) "no longer depends" false (Truthtable.depends_on f1 1)

let test_support () =
  let f = Truthtable.and_ (Truthtable.var 4 1) (Truthtable.var 4 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Truthtable.support f);
  let g, vars = Truthtable.shrink_support f in
  Alcotest.(check (list int)) "shrink vars" [ 1; 3 ] vars;
  Alcotest.(check int) "shrunk arity" 2 (Truthtable.arity g);
  Alcotest.check tt "shrunk is and2" t_and g

let test_shrink_semantics () =
  let rng = Prelude.Rng.create 11 in
  for _ = 1 to 50 do
    let f = Truthtable.random rng 5 in
    let g, vars = Truthtable.shrink_support f in
    let vars = Array.of_list vars in
    for m = 0 to 31 do
      let compact = ref 0 in
      Array.iteri
        (fun pos v -> if m land (1 lsl v) <> 0 then compact := !compact lor (1 lsl pos))
        vars;
      Alcotest.(check bool) "shrink preserves value"
        (Truthtable.eval_bits f m)
        (Truthtable.eval_bits g !compact)
    done
  done

let test_permute () =
  (* f(x0,x1) = x0 AND NOT x1; permuting swaps roles *)
  let f = Truthtable.and_ (Truthtable.var 2 0) (Truthtable.not_ (Truthtable.var 2 1)) in
  let g = Truthtable.permute f [| 1; 0 |] in
  for m = 0 to 3 do
    let swapped = ((m land 1) lsl 1) lor ((m land 2) lsr 1) in
    Alcotest.(check bool) "permute" (Truthtable.eval_bits f swapped)
      (Truthtable.eval_bits g m)
  done

let test_lift () =
  let f = Truthtable.xor_all 2 in
  let g = Truthtable.lift f 4 in
  Alcotest.(check int) "lift arity" 4 (Truthtable.arity g);
  for m = 0 to 15 do
    Alcotest.(check bool) "lift semantics"
      (Truthtable.eval_bits f (m land 3))
      (Truthtable.eval_bits g m)
  done;
  Alcotest.(check (list int)) "lift support" [ 0; 1 ] (Truthtable.support g)

let test_random_nondegenerate () =
  let rng = Prelude.Rng.create 5 in
  for k = 1 to 6 do
    for _ = 1 to 20 do
      let f = Truthtable.random_nondegenerate rng k in
      Alcotest.(check int) (Printf.sprintf "full support k=%d" k) k
        (List.length (Truthtable.support f))
    done
  done

let test_xor_and_or_all () =
  Alcotest.(check int) "xor3 ones" 4 (Truthtable.count_ones (Truthtable.xor_all 3));
  Alcotest.(check int) "and4 ones" 1 (Truthtable.count_ones (Truthtable.and_all 4));
  Alcotest.(check int) "or4 ones" 15 (Truthtable.count_ones (Truthtable.or_all 4))

let test_create_bounds () =
  Alcotest.check_raises "arity 7" (Invalid_argument "Truthtable.create: arity")
    (fun () -> ignore (Truthtable.create 7 0L));
  Alcotest.check_raises "negative" (Invalid_argument "Truthtable.create: arity")
    (fun () -> ignore (Truthtable.create (-1) 0L));
  (* canonical masking *)
  let f = Truthtable.create 1 0xFFL in
  Alcotest.(check int64) "masked" 3L (Truthtable.bits f)

let qcheck_props =
  let open QCheck in
  let gen_tt k =
    make
      ~print:Truthtable.to_string
      (Gen.map (fun b -> Truthtable.create k b) Gen.int64)
  in
  [
    Test.make ~name:"demorgan" ~count:300 (pair (gen_tt 4) (gen_tt 4))
      (fun (a, b) ->
        Truthtable.equal
          (Truthtable.not_ (Truthtable.and_ a b))
          (Truthtable.or_ (Truthtable.not_ a) (Truthtable.not_ b)));
    Test.make ~name:"double negation" ~count:300 (gen_tt 5) (fun a ->
        Truthtable.equal a (Truthtable.not_ (Truthtable.not_ a)));
    Test.make ~name:"xor self is zero" ~count:300 (gen_tt 5) (fun a ->
        Truthtable.equal (Truthtable.const0 5) (Truthtable.xor a a));
    Test.make ~name:"shannon expansion" ~count:300 (gen_tt 4) (fun f ->
        let v = Truthtable.var 4 2 in
        let lo = Truthtable.cofactor f 2 false
        and hi = Truthtable.cofactor f 2 true in
        Truthtable.equal f (Truthtable.ite v hi lo));
    Test.make ~name:"count_ones via eval" ~count:100 (gen_tt 4) (fun f ->
        let n = ref 0 in
        for m = 0 to 15 do
          if Truthtable.eval_bits f m then incr n
        done;
        !n = Truthtable.count_ones f);
    Test.make ~name:"permute by inverse is identity" ~count:300 (gen_tt 4)
      (fun f ->
        let p = [| 2; 0; 3; 1 |] in
        (* inverse of p *)
        let q = Array.make 4 0 in
        Array.iteri (fun i v -> q.(v) <- i) p;
        Truthtable.equal f (Truthtable.permute (Truthtable.permute f p) q));
    Test.make ~name:"lift then shrink is identity on full support" ~count:300
      (gen_tt 3) (fun f ->
        QCheck.assume (List.length (Truthtable.support f) = 3);
        let g = Truthtable.lift f 5 in
        let h, vars = Truthtable.shrink_support g in
        vars = [ 0; 1; 2 ] && Truthtable.equal h f);
    Test.make ~name:"cofactor idempotent" ~count:300 (gen_tt 4) (fun f ->
        let g = Truthtable.cofactor f 1 true in
        Truthtable.equal g (Truthtable.cofactor g 1 true)
        && Truthtable.equal g (Truthtable.cofactor g 1 false));
  ]

let () =
  Alcotest.run "logic"
    [
      ( "truthtable",
        [
          Alcotest.test_case "constants" `Quick test_consts;
          Alcotest.test_case "variables" `Quick test_var_eval;
          Alcotest.test_case "gates" `Quick test_gates;
          Alcotest.test_case "ite" `Quick test_ite;
          Alcotest.test_case "cofactor" `Quick test_cofactor;
          Alcotest.test_case "support/shrink" `Quick test_support;
          Alcotest.test_case "shrink semantics" `Quick test_shrink_semantics;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "lift" `Quick test_lift;
          Alcotest.test_case "random nondegenerate" `Quick
            test_random_nondegenerate;
          Alcotest.test_case "xor/and/or all" `Quick test_xor_and_or_all;
          Alcotest.test_case "create bounds" `Quick test_create_bounds;
        ] );
      ("truthtable-props", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
