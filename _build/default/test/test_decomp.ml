(* Tests for cofactor classes and single-output functional decomposition. *)

open Prelude
open Logic
open Decomp

let mk_f_bdd man tt vars = Bdd.of_truthtable man tt vars

let test_classes_xor () =
  let man = Bdd.new_man () in
  let tt = Truthtable.xor_all 4 in
  let f = mk_f_bdd man tt [| 0; 1; 2; 3 |] in
  (* any bound set of an xor has exactly 2 classes *)
  List.iter
    (fun bound ->
      Alcotest.(check int) "xor mu=2" 2
        (Classes.multiplicity man f ~bound:(Array.of_list bound)))
    [ [ 0 ]; [ 0; 1 ]; [ 1; 3 ]; [ 0; 1; 2 ] ]

let test_classes_and () =
  let man = Bdd.new_man () in
  let tt = Truthtable.and_all 4 in
  let f = mk_f_bdd man tt [| 0; 1; 2; 3 |] in
  (* and: bound cofactors are (0,...,0, product of free) => 2 classes *)
  Alcotest.(check int) "and mu=2" 2
    (Classes.multiplicity man f ~bound:[| 0; 1 |])

let test_classes_mux_high () =
  let man = Bdd.new_man () in
  (* f = mux(s; a, b) with bound {a,b}: cofactors s, !s?... enumerate:
     f = s?a:b; restrict a,b: (0,0)->0, (0,1)->!s, (1,0)->s, (1,1)->1:
     four distinct cofactors *)
  let s = Bdd.var man 0 and a = Bdd.var man 1 and b = Bdd.var man 2 in
  let f = Bdd.ite man s a b in
  Alcotest.(check int) "mux mu=4" 4 (Classes.multiplicity man f ~bound:[| 1; 2 |])

let test_classes_constant () =
  let man = Bdd.new_man () in
  Alcotest.(check int) "const mu=1" 1
    (Classes.multiplicity man (Bdd.bdd_true man) ~bound:[| 0; 1 |])

(* brute-force multiplicity via truth tables *)
let brute_multiplicity tt bound =
  let k = Truthtable.arity tt in
  let free = List.filter (fun v -> not (Array.mem v bound)) (List.init k Fun.id) in
  let cof_signature m =
    (* evaluate f on all free assignments with bound fixed by m *)
    List.init (1 lsl List.length free) (fun fm ->
        let assignment = ref 0 in
        Array.iteri
          (fun j v -> if m land (1 lsl j) <> 0 then assignment := !assignment lor (1 lsl v))
          bound;
        List.iteri
          (fun j v -> if fm land (1 lsl j) <> 0 then assignment := !assignment lor (1 lsl v))
          free;
        Truthtable.eval_bits tt !assignment)
  in
  let sigs = List.init (1 lsl Array.length bound) cof_signature in
  List.length (List.sort_uniq compare sigs)

let qcheck_classes =
  let open QCheck in
  let gen =
    Gen.(
      let* tt = Gen.map (fun b -> Truthtable.create 5 b) Gen.int64 in
      let* bsize = int_range 1 3 in
      let* shuffled = Gen.shuffle_l [ 0; 1; 2; 3; 4 ] in
      let bound = Array.of_list (List.filteri (fun i _ -> i < bsize) shuffled) in
      return (tt, bound))
  in
  let print (tt, bound) =
    Printf.sprintf "%s bound=[%s]" (Truthtable.to_string tt)
      (String.concat "," (Array.to_list (Array.map string_of_int bound)))
  in
  [
    Test.make ~name:"multiplicity matches brute force" ~count:300
      (make ~print gen)
      (fun (tt, bound) ->
        let man = Bdd.new_man () in
        let f = mk_f_bdd man tt [| 0; 1; 2; 3; 4 |] in
        Classes.multiplicity man f ~bound = brute_multiplicity tt bound);
  ]

(* --- decomposition --- *)

let check_tree_correct man f vars tree n_inputs =
  (* exhaustive evaluation over all input assignments *)
  let ok = ref true in
  for m = 0 to (1 lsl n_inputs) - 1 do
    let env_input i = m land (1 lsl i) <> 0 in
    let env_var v =
      (* find input index of var v *)
      let idx = ref (-1) in
      Array.iteri (fun i x -> if x = v then idx := i) vars;
      !idx >= 0 && env_input !idx
    in
    if Decompose.eval_tree tree env_input <> Bdd.eval man f env_var then ok := false
  done;
  !ok

let rec check_k_feasible k = function
  | Decompose.Input _ -> true
  | Decompose.Lut (tt, fanins) ->
      Truthtable.arity tt <= k
      && Array.length fanins = Truthtable.arity tt
      && Array.for_all (check_k_feasible k) fanins

let test_decompose_xor8 () =
  let man = Bdd.new_man () in
  let n = 8 in
  let vars = Array.init n Fun.id in
  let f = ref (Bdd.bdd_false man) in
  Array.iter (fun v -> f := Bdd.xor man !f (Bdd.var man v)) vars;
  let arrivals = Array.make n Rat.zero in
  match Decompose.decompose man ~f:!f ~vars ~arrivals ~k:4 with
  | None -> Alcotest.fail "xor8 must decompose"
  | Some r ->
      Alcotest.(check bool) "correct" true (check_tree_correct man !f vars r.Decompose.tree n);
      Alcotest.(check bool) "k-feasible" true (check_k_feasible 4 r.Decompose.tree);
      (* 8-input xor with 4-luts: 3 luts at levels (1,1),2 -> root level 2 *)
      Alcotest.(check bool) "level at most 2" true Rat.(r.Decompose.level <= of_int 2)

let test_decompose_and10 () =
  let man = Bdd.new_man () in
  let n = 10 in
  let vars = Array.init n Fun.id in
  let f = ref (Bdd.bdd_true man) in
  Array.iter (fun v -> f := Bdd.and_ man !f (Bdd.var man v)) vars;
  let arrivals = Array.make n Rat.zero in
  match Decompose.decompose man ~f:!f ~vars ~arrivals ~k:5 with
  | None -> Alcotest.fail "and10 must decompose"
  | Some r ->
      Alcotest.(check bool) "correct" true (check_tree_correct man !f vars r.Decompose.tree n);
      Alcotest.(check bool) "k-feasible" true (check_k_feasible 5 r.Decompose.tree)

let test_decompose_respects_arrivals () =
  (* 6-input xor, k=4; inputs 4,5 arrive late: the bound set should use the
     early inputs so the root level is late_arrival + 1 *)
  let man = Bdd.new_man () in
  let n = 6 in
  let vars = Array.init n Fun.id in
  let f = ref (Bdd.bdd_false man) in
  Array.iter (fun v -> f := Bdd.xor man !f (Bdd.var man v)) vars;
  let arrivals = Array.init n (fun i -> if i >= 4 then Rat.of_int 5 else Rat.zero) in
  match Decompose.decompose man ~f:!f ~vars ~arrivals ~k:4 with
  | None -> Alcotest.fail "must decompose"
  | Some r ->
      Alcotest.(check bool) "correct" true (check_tree_correct man !f vars r.Decompose.tree n);
      (* extracting g(x0..x3) at level 1, root lut (g,x4,x5) at level 6 *)
      Alcotest.(check string) "level 6" "6" (Rat.to_string r.Decompose.level)

let test_decompose_already_small () =
  let man = Bdd.new_man () in
  let vars = [| 0; 1; 2 |] in
  let tt = Truthtable.xor_all 3 in
  let f = mk_f_bdd man tt vars in
  let arrivals = Array.make 3 Rat.zero in
  match Decompose.decompose man ~f ~vars ~arrivals ~k:4 with
  | None -> Alcotest.fail "small function trivially decomposes"
  | Some r ->
      Alcotest.(check int) "one lut" 1 r.Decompose.luts;
      Alcotest.(check string) "level 1" "1" (Rat.to_string r.Decompose.level)

let test_decompose_projection () =
  let man = Bdd.new_man () in
  let vars = [| 0; 1 |] in
  let f = Bdd.var man 1 in
  let arrivals = [| Rat.zero; Rat.of_int 3 |] in
  match Decompose.decompose man ~f ~vars ~arrivals ~k:4 with
  | None -> Alcotest.fail "projection decomposes"
  | Some r ->
      Alcotest.(check int) "no luts" 0 r.Decompose.luts;
      Alcotest.(check string) "level is arrival" "3" (Rat.to_string r.Decompose.level)

let test_decompose_constant () =
  let man = Bdd.new_man () in
  let vars = [| 0; 1 |] in
  let arrivals = Array.make 2 Rat.zero in
  match Decompose.decompose man ~f:(Bdd.bdd_true man) ~vars ~arrivals ~k:4 with
  | None -> Alcotest.fail "constant decomposes"
  | Some r ->
      Alcotest.(check bool) "constant lut" true
        (match r.Decompose.tree with
        | Decompose.Lut (tt, [||]) -> Truthtable.is_const tt = Some true
        | _ -> false)

let test_decompose_stuck () =
  (* A function chosen so that no small bound set has mu <= 2: a random
     dense 7-input function (almost surely undecomposable); we verify the
     engine reports None rather than producing an invalid tree. *)
  let rng = Rng.create 4242 in
  let man = Bdd.new_man () in
  let n = 7 in
  let vars = Array.init n Fun.id in
  let arrivals = Array.make n Rat.zero in
  let found_none = ref false in
  for _ = 1 to 10 do
    (* random function over 7 vars via random 64-bit chunks *)
    let f = ref (Bdd.bdd_false man) in
    for m = 0 to 127 do
      if Rng.bool rng then begin
        let minterm = ref (Bdd.bdd_true man) in
        for j = 0 to n - 1 do
          let v = Bdd.var man j in
          let lit = if m land (1 lsl j) <> 0 then v else Bdd.neg man v in
          minterm := Bdd.and_ man !minterm lit
        done;
        f := Bdd.or_ man !f !minterm
      end
    done;
    match Decompose.decompose ~exhaustive:true man ~f:!f ~vars ~arrivals ~k:4 with
    | None -> found_none := true
    | Some r ->
        Alcotest.(check bool) "if it decomposes, it is correct" true
          (check_tree_correct man !f vars r.Decompose.tree n
          && check_k_feasible 4 r.Decompose.tree)
  done;
  Alcotest.(check bool) "random dense functions mostly stuck" true !found_none

(* f = h(count(x0,x1,x2), x3, x4) where h distinguishes all four counts:
   column multiplicity 4 for the natural bound set, and no 2-class bound
   set exists, so single-output decomposition is stuck while two-wire
   (multi-output) extraction succeeds. *)
let stuck_but_mu4 man =
  let x = Array.init 5 (fun i -> Bdd.var man i) in
  (* count bits of x0..x2 as (ge1, ge2, eq3) helpers *)
  let pairs =
    [ Bdd.and_ man x.(0) x.(1); Bdd.and_ man x.(0) x.(2); Bdd.and_ man x.(1) x.(2) ]
  in
  let ge1 = Bdd.or_ man x.(0) (Bdd.or_ man x.(1) x.(2)) in
  let ge2 = List.fold_left (Bdd.or_ man) (Bdd.bdd_false man) pairs in
  let eq3 = Bdd.and_ man x.(0) (Bdd.and_ man x.(1) x.(2)) in
  let eq0 = Bdd.neg man ge1 in
  let eq1 = Bdd.and_ man ge1 (Bdd.neg man ge2) in
  let eq2 = Bdd.and_ man ge2 (Bdd.neg man eq3) in
  let y1 = x.(3) and y2 = x.(4) in
  let case0 = Bdd.and_ man y1 y2 in
  let case1 = Bdd.or_ man y1 y2 in
  let case2 = Bdd.xor man y1 y2 in
  let case3 = Bdd.neg man y1 in
  List.fold_left (Bdd.or_ man) (Bdd.bdd_false man)
    [
      Bdd.and_ man eq0 case0;
      Bdd.and_ man eq1 case1;
      Bdd.and_ man eq2 case2;
      Bdd.and_ man eq3 case3;
    ]

let test_decompose_multi_output () =
  let man = Bdd.new_man () in
  let f = stuck_but_mu4 man in
  let vars = Array.init 5 Fun.id in
  let arrivals = Array.make 5 Rat.zero in
  (* single-output (even exhaustive) is stuck at k=3 *)
  (match Decompose.decompose ~exhaustive:true man ~f ~vars ~arrivals ~k:3 with
  | None -> ()
  | Some r ->
      (* if some bound set slipped through, the tree must still be valid *)
      Alcotest.(check bool) "valid if found" true
        (check_tree_correct man f vars r.Decompose.tree 5));
  (* two-wire extraction succeeds *)
  match
    Decompose.decompose ~exhaustive:true ~multi:true man ~f ~vars ~arrivals
      ~k:3
  with
  | None -> Alcotest.fail "multi-output decomposition must succeed"
  | Some r ->
      Alcotest.(check bool) "correct" true
        (check_tree_correct man f vars r.Decompose.tree 5);
      Alcotest.(check bool) "k-feasible" true (check_k_feasible 3 r.Decompose.tree)

let qcheck_decompose =
  let open QCheck in
  (* structured decomposable functions: h(g1(x0..x2), g2(x3..x5), x6) *)
  let gen =
    Gen.(
      let* h = Gen.map (fun b -> Truthtable.create 3 b) Gen.int64 in
      let* g1 = Gen.map (fun b -> Truthtable.create 3 b) Gen.int64 in
      let* g2 = Gen.map (fun b -> Truthtable.create 3 b) Gen.int64 in
      return (h, g1, g2))
  in
  let print (h, g1, g2) =
    Printf.sprintf "h=%s g1=%s g2=%s" (Truthtable.to_string h)
      (Truthtable.to_string g1) (Truthtable.to_string g2)
  in
  [
    Test.make ~name:"decomposed trees are correct and k-feasible" ~count:150
      (make ~print gen)
      (fun (h, g1, g2) ->
        let man = Bdd.new_man () in
        let n = 7 in
        let vars = Array.init n Fun.id in
        let b1 = Bdd.of_truthtable man g1 [| 0; 1; 2 |] in
        let b2 = Bdd.of_truthtable man g2 [| 3; 4; 5 |] in
        let f =
          Bdd.apply_truthtable man h [| b1; b2; Bdd.var man 6 |]
        in
        let arrivals = Array.make n Rat.zero in
        match Decompose.decompose ~exhaustive:true man ~f ~vars ~arrivals ~k:4 with
        | None ->
            (* acceptable only if f has > 4 support vars and really resists;
               with this structure mu(bound={0,1,2}) <= 2 only if g1 feeds h
               as one wire — which it does — but the heuristic may pick other
               bound sets. Accept None only when f depends on > 4 vars and
               no earliest-prefix works; rather than re-verify, require
               decomposition whenever support <= 4 *)
            List.length (Bdd.support man f) > 4
        | Some r ->
            check_tree_correct man f vars r.Decompose.tree n
            && check_k_feasible 4 r.Decompose.tree);
  ]

let () =
  Alcotest.run "decomp"
    [
      ( "classes",
        [
          Alcotest.test_case "xor" `Quick test_classes_xor;
          Alcotest.test_case "and" `Quick test_classes_and;
          Alcotest.test_case "mux" `Quick test_classes_mux_high;
          Alcotest.test_case "constant" `Quick test_classes_constant;
        ] );
      ("classes-props", List.map QCheck_alcotest.to_alcotest qcheck_classes);
      ( "decompose",
        [
          Alcotest.test_case "xor8" `Quick test_decompose_xor8;
          Alcotest.test_case "and10" `Quick test_decompose_and10;
          Alcotest.test_case "arrivals" `Quick test_decompose_respects_arrivals;
          Alcotest.test_case "already small" `Quick test_decompose_already_small;
          Alcotest.test_case "projection" `Quick test_decompose_projection;
          Alcotest.test_case "constant" `Quick test_decompose_constant;
          Alcotest.test_case "stuck" `Quick test_decompose_stuck;
          Alcotest.test_case "multi-output" `Quick test_decompose_multi_output;
        ] );
      ("decompose-props", List.map QCheck_alcotest.to_alcotest qcheck_decompose);
    ]
