(* Tests for the BDD library, including cross-checks against truth tables. *)

open Logic

let test_terminals () =
  let m = Bdd.new_man () in
  Alcotest.(check bool) "true is true" true (Bdd.is_true m (Bdd.bdd_true m));
  Alcotest.(check bool) "false is false" true (Bdd.is_false m (Bdd.bdd_false m));
  Alcotest.(check bool) "distinct" false
    (Bdd.equal (Bdd.bdd_true m) (Bdd.bdd_false m))

let test_var_eval () =
  let m = Bdd.new_man () in
  let x = Bdd.var m 0 and y = Bdd.var m 3 in
  Alcotest.(check bool) "x under x=1" true (Bdd.eval m x (fun i -> i = 0));
  Alcotest.(check bool) "x under x=0" false (Bdd.eval m x (fun _ -> false));
  Alcotest.(check bool) "y under y=1" true (Bdd.eval m y (fun i -> i = 3));
  Alcotest.(check int) "nvars grows" 4 (Bdd.nvars m)

let test_hash_consing () =
  let m = Bdd.new_man () in
  let a = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.and_ m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "and commutes to same node" true (Bdd.equal a b);
  let c = Bdd.neg m (Bdd.or_ m (Bdd.neg m (Bdd.var m 0)) (Bdd.neg m (Bdd.var m 1))) in
  Alcotest.(check bool) "demorgan same node" true (Bdd.equal a c)

let test_ops_vs_truthtable () =
  (* exhaustive check of every operator on every pair of 3-var functions
     drawn from a random sample *)
  let rng = Prelude.Rng.create 77 in
  let m = Bdd.new_man () in
  let vars = [| 0; 1; 2 |] in
  for _ = 1 to 60 do
    let ta = Truthtable.random rng 3 and tb = Truthtable.random rng 3 in
    let a = Bdd.of_truthtable m ta vars and b = Bdd.of_truthtable m tb vars in
    let pairs =
      [
        ("and", Truthtable.and_ ta tb, Bdd.and_ m a b);
        ("or", Truthtable.or_ ta tb, Bdd.or_ m a b);
        ("xor", Truthtable.xor ta tb, Bdd.xor m a b);
        ("xnor", Truthtable.xnor ta tb, Bdd.xnor m a b);
        ("imp", Truthtable.or_ (Truthtable.not_ ta) tb, Bdd.imp m a b);
        ("neg", Truthtable.not_ ta, Bdd.neg m a);
      ]
    in
    List.iter
      (fun (name, expect_tt, got) ->
        let got_tt = Bdd.to_truthtable m got vars in
        Alcotest.(check bool) name true (Truthtable.equal expect_tt got_tt))
      pairs
  done

let test_roundtrip () =
  let rng = Prelude.Rng.create 123 in
  let m = Bdd.new_man () in
  for k = 0 to 6 do
    let vars = Array.init k Fun.id in
    for _ = 1 to 30 do
      let t = Truthtable.random rng k in
      let f = Bdd.of_truthtable m t vars in
      let t' = Bdd.to_truthtable m f vars in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip k=%d" k)
        true (Truthtable.equal t t')
    done
  done

let test_roundtrip_scrambled_vars () =
  let rng = Prelude.Rng.create 9 in
  let m = Bdd.new_man () in
  let vars = [| 5; 2; 9 |] in
  for _ = 1 to 30 do
    let t = Truthtable.random rng 3 in
    let f = Bdd.of_truthtable m t vars in
    let t' = Bdd.to_truthtable m f vars in
    Alcotest.(check bool) "roundtrip scrambled" true (Truthtable.equal t t')
  done

let test_restrict () =
  let m = Bdd.new_man () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.ite m x y z in
  Alcotest.(check bool) "restrict x=1 gives y" true
    (Bdd.equal y (Bdd.restrict m f 0 true));
  Alcotest.(check bool) "restrict x=0 gives z" true
    (Bdd.equal z (Bdd.restrict m f 0 false));
  let g = Bdd.restrict_many m f [ (0, true); (1, false) ] in
  Alcotest.(check bool) "restrict many" true (Bdd.is_false m g)

let test_compose () =
  let m = Bdd.new_man () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  (* f = x AND y; compose y := (y OR z) *)
  let f = Bdd.and_ m x y in
  let g = Bdd.compose m f 1 (Bdd.or_ m y z) in
  let expect = Bdd.and_ m x (Bdd.or_ m y z) in
  Alcotest.(check bool) "compose" true (Bdd.equal g expect);
  (* composing a variable below the substituted one *)
  let h = Bdd.and_ m y z in
  let h' = Bdd.compose m h 2 x in
  Alcotest.(check bool) "compose lower var" true
    (Bdd.equal h' (Bdd.and_ m y x))

let test_support () =
  let m = Bdd.new_man () in
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 1) (Bdd.var m 4))
      (Bdd.and_ m (Bdd.var m 1) (Bdd.neg m (Bdd.var m 4)))
  in
  (* f collapses to var 1 *)
  Alcotest.(check (list int)) "support collapses" [ 1 ] (Bdd.support m f);
  let g = Bdd.xor m (Bdd.var m 0) (Bdd.var m 5) in
  Alcotest.(check (list int)) "xor support" [ 0; 5 ] (Bdd.support m g)

let test_sat_count () =
  let m = Bdd.new_man () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check int) "and" 1 (Bdd.sat_count m (Bdd.and_ m x y) 2);
  Alcotest.(check int) "or" 3 (Bdd.sat_count m (Bdd.or_ m x y) 2);
  Alcotest.(check int) "xor over 3 vars" 4 (Bdd.sat_count m (Bdd.xor m x y) 3);
  Alcotest.(check int) "true" 8 (Bdd.sat_count m (Bdd.bdd_true m) 3);
  Alcotest.(check int) "false" 0 (Bdd.sat_count m (Bdd.bdd_false m) 3)

let test_apply_truthtable () =
  let rng = Prelude.Rng.create 31 in
  let m = Bdd.new_man () in
  let vars = [| 0; 1; 2; 3 |] in
  for _ = 1 to 30 do
    (* random 2-level structure: top gate over three leaf functions *)
    let top = Truthtable.random rng 3 in
    let leaves = Array.init 3 (fun _ -> Truthtable.random rng 4) in
    let leaf_bdds = Array.map (fun t -> Bdd.of_truthtable m t vars) leaves in
    let composed = Bdd.apply_truthtable m top leaf_bdds in
    (* check by evaluation on all 16 assignments *)
    for a = 0 to 15 do
      let env i = a land (1 lsl i) <> 0 in
      let leaf_vals = Array.map (fun t -> Truthtable.eval_bits t a) leaves in
      let expect = Truthtable.eval top leaf_vals in
      Alcotest.(check bool) "apply_truthtable" expect (Bdd.eval m composed env)
    done
  done

let test_size () =
  let m = Bdd.new_man () in
  Alcotest.(check int) "terminal size" 1 (Bdd.size m (Bdd.bdd_true m));
  let x = Bdd.var m 0 in
  Alcotest.(check int) "var size" 3 (Bdd.size m x)

let test_large_xor_is_compact () =
  (* xor of n variables has exactly 2n+2 nodes: BDDs stay polynomial where
     truth tables would explode *)
  let m = Bdd.new_man () in
  let n = 40 in
  let f = ref (Bdd.bdd_false m) in
  for i = 0 to n - 1 do
    f := Bdd.xor m !f (Bdd.var m i)
  done;
  Alcotest.(check int) "xor40 compact" ((2 * n) + 1) (Bdd.size m !f)

let qcheck_props =
  let open QCheck in
  let gen_tt k =
    make ~print:Truthtable.to_string
      (Gen.map (fun b -> Truthtable.create k b) Gen.int64)
  in
  [
    Test.make ~name:"bdd equality is functional equality" ~count:200
      (pair (gen_tt 4) (gen_tt 4)) (fun (a, b) ->
        let m = Bdd.new_man () in
        let vars = [| 0; 1; 2; 3 |] in
        let fa = Bdd.of_truthtable m a vars in
        let fb = Bdd.of_truthtable m b vars in
        Bdd.equal fa fb = Truthtable.equal a b);
    Test.make ~name:"sat_count matches count_ones" ~count:200 (gen_tt 5)
      (fun t ->
        let m = Bdd.new_man () in
        let f = Bdd.of_truthtable m t [| 0; 1; 2; 3; 4 |] in
        Bdd.sat_count m f 5 = Truthtable.count_ones t);
    Test.make ~name:"shannon via restrict" ~count:200 (gen_tt 4) (fun t ->
        let m = Bdd.new_man () in
        let f = Bdd.of_truthtable m t [| 0; 1; 2; 3 |] in
        let x = Bdd.var m 2 in
        let hi = Bdd.restrict m f 2 true and lo = Bdd.restrict m f 2 false in
        Bdd.equal f (Bdd.ite m x hi lo));
    Test.make ~name:"support matches truthtable" ~count:200 (gen_tt 5)
      (fun t ->
        let m = Bdd.new_man () in
        let f = Bdd.of_truthtable m t [| 0; 1; 2; 3; 4 |] in
        Bdd.support m f = Truthtable.support t);
  ]

let () =
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "variables" `Quick test_var_eval;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "ops vs truthtable" `Quick test_ops_vs_truthtable;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip scrambled" `Quick
            test_roundtrip_scrambled_vars;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "sat count" `Quick test_sat_count;
          Alcotest.test_case "apply truthtable" `Quick test_apply_truthtable;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "xor40 compact" `Quick test_large_xor_is_compact;
        ] );
      ("bdd-props", List.map QCheck_alcotest.to_alcotest qcheck_props);
    ]
