(* Tests for graph algorithms: SCC, topological sort, Bellman-Ford,
   exact maximum delay-to-register ratio (vs brute-force cycle
   enumeration on small random graphs). *)

open Prelude
open Graphs

let succ_of_list n pairs =
  let succ = Array.make n [] in
  List.iter (fun (a, b) -> succ.(a) <- b :: succ.(a)) pairs;
  fun v -> succ.(v)

(* --- SCC --- *)

let test_scc_basic () =
  (* two 2-cycles joined by a one-way edge, plus an isolated node *)
  let succ = succ_of_list 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let scc = Scc.compute ~n:5 ~succ in
  Alcotest.(check int) "three comps" 3 scc.Scc.count;
  Alcotest.(check int) "0 and 1 together" scc.Scc.comp.(0) scc.Scc.comp.(1);
  Alcotest.(check int) "2 and 3 together" scc.Scc.comp.(2) scc.Scc.comp.(3);
  Alcotest.(check bool) "4 alone" true
    (scc.Scc.comp.(4) <> scc.Scc.comp.(0) && scc.Scc.comp.(4) <> scc.Scc.comp.(2));
  (* edge comp(1) -> comp(2): target must have smaller id *)
  Alcotest.(check bool) "reverse-topological ids" true
    (scc.Scc.comp.(1) > scc.Scc.comp.(2))

let test_scc_single_cycle () =
  let n = 6 in
  let succ = succ_of_list n (List.init n (fun i -> (i, (i + 1) mod n))) in
  let scc = Scc.compute ~n ~succ in
  Alcotest.(check int) "one comp" 1 scc.Scc.count;
  Alcotest.(check int) "all members" n (Array.length scc.Scc.members.(0))

let test_scc_dag () =
  let succ = succ_of_list 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let scc = Scc.compute ~n:4 ~succ in
  Alcotest.(check int) "all singleton" 4 scc.Scc.count;
  for c = 0 to 3 do
    Alcotest.(check bool) "trivial" true (Scc.is_trivial scc ~succ c)
  done

let test_scc_self_loop () =
  let succ = succ_of_list 2 [ (0, 0); (0, 1) ] in
  let scc = Scc.compute ~n:2 ~succ in
  Alcotest.(check int) "two comps" 2 scc.Scc.count;
  Alcotest.(check bool) "self loop not trivial" false
    (Scc.is_trivial scc ~succ scc.Scc.comp.(0));
  Alcotest.(check bool) "other trivial" true
    (Scc.is_trivial scc ~succ scc.Scc.comp.(1))

let test_scc_topo_order () =
  let succ = succ_of_list 4 [ (0, 1); (1, 2); (2, 3) ] in
  let scc = Scc.compute ~n:4 ~succ in
  let order = Scc.topo_order scc in
  (* position of comp of node v *)
  let pos = Array.make scc.Scc.count 0 in
  Array.iteri (fun i c -> pos.(c) <- i) order;
  Alcotest.(check bool) "edges forward" true
    (pos.(scc.Scc.comp.(0)) < pos.(scc.Scc.comp.(1))
    && pos.(scc.Scc.comp.(1)) < pos.(scc.Scc.comp.(2))
    && pos.(scc.Scc.comp.(2)) < pos.(scc.Scc.comp.(3)))

(* property: comp ids consistent with reachability on random graphs *)
let qcheck_scc =
  let open QCheck in
  let gen =
    Gen.(
      sized_size (int_range 2 9) (fun n ->
          let* edges =
            list_size (int_range 0 (2 * n))
              (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
          in
          return (n, edges)))
  in
  let reachable n edges =
    (* floyd-warshall boolean closure *)
    let r = Array.make_matrix n n false in
    List.iter (fun (a, b) -> r.(a).(b) <- true) edges;
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
        done
      done
    done;
    r
  in
  [
    Test.make ~name:"scc matches mutual reachability" ~count:300
      (make ~print:(fun (n, e) -> Printf.sprintf "n=%d edges=%d" n (List.length e)) gen)
      (fun (n, edges) ->
        let succ = succ_of_list n edges in
        let scc = Scc.compute ~n ~succ in
        let r = reachable n edges in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let same = scc.Scc.comp.(i) = scc.Scc.comp.(j) in
            let mutual = i = j || (r.(i).(j) && r.(j).(i)) in
            if same <> mutual then ok := false
          done
        done;
        !ok);
  ]

(* --- Topo --- *)

let test_topo_dag () =
  let succ = succ_of_list 5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ] in
  match Topo.sort ~n:5 ~succ with
  | None -> Alcotest.fail "expected DAG"
  | Some order ->
      let pos = Array.make 5 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      List.iter
        (fun (a, b) ->
          Alcotest.(check bool) "edge forward" true (pos.(a) < pos.(b)))
        [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4) ]

let test_topo_cycle () =
  let succ = succ_of_list 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "cycle detected" true (Topo.sort ~n:3 ~succ = None);
  Alcotest.check_raises "sort_exn raises"
    (Invalid_argument "Topo.sort_exn: graph has a cycle") (fun () ->
      ignore (Topo.sort_exn ~n:3 ~succ))

let test_topo_levels () =
  let succ = succ_of_list 5 [ (0, 2); (1, 2); (2, 3); (1, 3); (3, 4) ] in
  let lv = Topo.levels ~n:5 ~succ ~sources:[ 0; 1 ] in
  Alcotest.(check (array int)) "levels" [| 0; 0; 1; 2; 3 |] lv

let test_topo_levels_unreachable () =
  let succ = succ_of_list 3 [ (0, 1) ] in
  let lv = Topo.levels ~n:3 ~succ ~sources:[ 0 ] in
  Alcotest.(check (array int)) "unreachable is -1" [| 0; 1; -1 |] lv

(* --- Bellman-Ford --- *)

let bf_edges lst =
  Array.of_list
    (List.map (fun (src, dst, len) -> { Bellman_ford.src; dst; len }) lst)

let test_bf_no_cycle () =
  let edges = bf_edges [ (0, 1, 5); (1, 2, -3); (0, 2, 10) ] in
  Alcotest.(check bool) "acyclic" false
    (Bellman_ford.has_positive_cycle ~n:3 ~edges)

let test_bf_positive_cycle () =
  let edges = bf_edges [ (0, 1, 2); (1, 0, -1) ] in
  Alcotest.(check bool) "positive 2-cycle" true
    (Bellman_ford.has_positive_cycle ~n:2 ~edges);
  let edges = bf_edges [ (0, 1, 2); (1, 0, -2) ] in
  Alcotest.(check bool) "zero cycle is fine" false
    (Bellman_ford.has_positive_cycle ~n:2 ~edges)

let test_bf_longest () =
  let edges = bf_edges [ (0, 1, 3); (1, 2, 4); (0, 2, 5) ] in
  match Bellman_ford.longest_paths ~n:3 ~edges ~sources:[ 0 ] with
  | None -> Alcotest.fail "no cycle expected"
  | Some d -> Alcotest.(check (array int)) "distances" [| 0; 3; 7 |] d

let test_bf_longest_cyclic () =
  let edges = bf_edges [ (0, 1, 1); (1, 0, 1) ] in
  Alcotest.(check bool) "cycle detected" true
    (Bellman_ford.longest_paths ~n:2 ~edges ~sources:[ 0 ] = None)

let test_bf_unreachable () =
  let edges = bf_edges [ (1, 2, 7) ] in
  match Bellman_ford.longest_paths ~n:3 ~edges ~sources:[ 0 ] with
  | None -> Alcotest.fail "acyclic"
  | Some d ->
      Alcotest.(check int) "source" 0 d.(0);
      Alcotest.(check bool) "unreachable" true (d.(1) = min_int && d.(2) = min_int)

(* --- Cycle ratio --- *)

let cr_edges lst =
  Array.of_list
    (List.map
       (fun (src, dst, delay, weight) -> { Cycle_ratio.src; dst; delay; weight })
       lst)

let rat = Alcotest.testable Rat.pp Rat.equal

let check_ratio name expect got =
  match got with
  | Cycle_ratio.Ratio r -> Alcotest.check rat name expect r
  | Cycle_ratio.No_cycle -> Alcotest.failf "%s: got No_cycle" name
  | Cycle_ratio.Infinite -> Alcotest.failf "%s: got Infinite" name

let test_ratio_simple_loop () =
  (* 3 unit-delay edges, 2 registers on the loop: ratio 3/2 *)
  let edges = cr_edges [ (0, 1, 1, 1); (1, 2, 1, 0); (2, 0, 1, 1) ] in
  check_ratio "3/2" (Rat.make 3 2) (Cycle_ratio.max_ratio ~n:3 ~edges)

let test_ratio_no_cycle () =
  let edges = cr_edges [ (0, 1, 1, 0); (1, 2, 1, 1) ] in
  Alcotest.(check bool) "no cycle" true
    (Cycle_ratio.max_ratio ~n:3 ~edges = Cycle_ratio.No_cycle)

let test_ratio_infinite () =
  let edges = cr_edges [ (0, 1, 1, 0); (1, 0, 1, 0) ] in
  Alcotest.(check bool) "combinational loop" true
    (Cycle_ratio.max_ratio ~n:2 ~edges = Cycle_ratio.Infinite)

let test_ratio_zero_delay_zero_weight_loop () =
  (* a zero-delay zero-weight loop does not make the ratio infinite *)
  let edges = cr_edges [ (0, 1, 0, 0); (1, 0, 0, 0); (0, 2, 1, 1); (2, 0, 1, 1) ] in
  check_ratio "ratio 1" Rat.one (Cycle_ratio.max_ratio ~n:3 ~edges)

let test_ratio_two_loops () =
  (* loop A ratio 2/1, loop B ratio 5/3: max is 2 *)
  let edges =
    cr_edges
      [
        (0, 1, 1, 0); (1, 0, 1, 1);
        (2, 3, 2, 1); (3, 4, 2, 1); (4, 2, 1, 1);
      ]
  in
  check_ratio "max 2" (Rat.of_int 2) (Cycle_ratio.max_ratio ~n:5 ~edges)

let test_ratio_exceeds () =
  let edges = cr_edges [ (0, 1, 1, 1); (1, 0, 2, 1) ] in
  Alcotest.(check bool) "exceeds 1" true
    (Cycle_ratio.exceeds ~n:2 ~edges Rat.one);
  Alcotest.(check bool) "not exceeds 3/2" false
    (Cycle_ratio.exceeds ~n:2 ~edges (Rat.make 3 2));
  Alcotest.(check bool) "not exceeds 2" false
    (Cycle_ratio.exceeds ~n:2 ~edges (Rat.of_int 2))

(* brute-force simple-cycle enumeration for small graphs *)
let brute_force_ratio n (edges : Cycle_ratio.edge array) =
  let best = ref None in
  let infinite = ref false in
  let adj = Array.make n [] in
  Array.iter (fun (e : Cycle_ratio.edge) -> adj.(e.src) <- e :: adj.(e.src)) edges;
  (* enumerate simple cycles whose smallest node is [start] *)
  let rec dfs start v visited dsum wsum =
    List.iter
      (fun (e : Cycle_ratio.edge) ->
        let d = dsum + e.delay and w = wsum + e.weight in
        if e.dst = start then begin
          if w = 0 && d > 0 then infinite := true
          else
            (* a 0-delay 0-weight cycle counts as a ratio-0 cycle *)
            let r = if w = 0 then Rat.zero else Rat.make d w in
            match !best with
            | None -> best := Some r
            | Some b -> if Rat.(r > b) then best := Some r
        end
        else if e.dst > start && not (List.mem e.dst visited) then
          dfs start e.dst (e.dst :: visited) d w)
      adj.(v)
  in
  for s = 0 to n - 1 do
    dfs s s [ s ] 0 0
  done;
  if !infinite then Cycle_ratio.Infinite
  else match !best with None -> Cycle_ratio.No_cycle | Some r -> Cycle_ratio.Ratio r

let qcheck_cycle_ratio =
  let open QCheck in
  let gen =
    Gen.(
      sized_size (int_range 2 7) (fun n ->
          let* edges =
            list_size (int_range 1 12)
              (quad (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 3)
                 (int_range 0 2))
          in
          return (n, edges)))
  in
  let print (n, es) =
    Printf.sprintf "n=%d [%s]" n
      (String.concat ";"
         (List.map (fun (a, b, d, w) -> Printf.sprintf "(%d,%d,d%d,w%d)" a b d w) es))
  in
  [
    Test.make ~name:"max_ratio matches brute force" ~count:500
      (make ~print gen)
      (fun (n, es) ->
        let edges = cr_edges es in
        let got = Cycle_ratio.max_ratio ~n ~edges in
        let expect = brute_force_ratio n edges in
        (match (got, expect) with
        | Cycle_ratio.Ratio a, Cycle_ratio.Ratio b -> Rat.equal a b
        | a, b -> a = b));
    Test.make ~name:"exceeds consistent with max_ratio" ~count:300
      (make ~print gen)
      (fun (n, es) ->
        let edges = cr_edges es in
        match Cycle_ratio.max_ratio ~n ~edges with
        | Cycle_ratio.Ratio r ->
            (not (Cycle_ratio.exceeds ~n ~edges r))
            && (Rat.equal r Rat.zero
               || Cycle_ratio.exceeds ~n ~edges
                    (Rat.sub r (Rat.make 1 1000000)))
        | Cycle_ratio.No_cycle -> not (Cycle_ratio.exceeds ~n ~edges Rat.zero)
        | Cycle_ratio.Infinite ->
            Cycle_ratio.exceeds ~n ~edges (Rat.of_int 1000000));
  ]

(* Howard's policy iteration must agree with the exact search *)
let qcheck_howard =
  let open QCheck in
  let gen =
    Gen.(
      sized_size (int_range 2 8) (fun n ->
          let* edges =
            list_size (int_range 1 14)
              (quad (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 4)
                 (int_range 1 3))
          in
          return (n, edges)))
  in
  let print (n, es) = Printf.sprintf "n=%d %d edges" n (List.length es) in
  [
    Test.make ~name:"howard matches exact max ratio" ~count:300
      (make ~print gen)
      (fun (n, es) ->
        (* weights >= 1 ensure the no-combinational-loop precondition *)
        let exact_edges = cr_edges (List.map (fun (a,b,d,w) -> (a,b,d,w)) es) in
        let hw_edges =
          Array.of_list
            (List.map
               (fun (src, dst, delay, weight) -> { Howard.src; dst; delay; weight })
               es)
        in
        match (Cycle_ratio.max_ratio ~n ~edges:exact_edges,
               Howard.max_ratio ~n ~edges:hw_edges) with
        | Cycle_ratio.No_cycle, None -> true
        | Cycle_ratio.Ratio r, Some lam ->
            Float.abs (Rat.to_float r -. lam) < 1e-6
        | Cycle_ratio.Infinite, _ -> false (* cannot happen: weights >= 1 *)
        | _ -> false);
  ]

(* Karp's max mean cycle vs the exact ratio search with unit weights *)
let qcheck_karp =
  let open QCheck in
  let gen =
    Gen.(
      sized_size (int_range 2 7) (fun n ->
          let* edges =
            list_size (int_range 1 12)
              (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
                 (int_range 0 5))
          in
          return (n, edges)))
  in
  let print (n, es) = Printf.sprintf "n=%d %d edges" n (List.length es) in
  [
    Test.make ~name:"karp matches exact max mean" ~count:300
      (make ~print gen)
      (fun (n, es) ->
        let exact_edges = cr_edges (List.map (fun (a, b, d) -> (a, b, d, 1)) es) in
        let karp_edges = Array.of_list es in
        match (Cycle_ratio.max_ratio ~n ~edges:exact_edges,
               Karp.max_mean ~n ~edges:karp_edges) with
        | Cycle_ratio.No_cycle, None -> true
        | Cycle_ratio.Ratio r, Some m -> Rat.equal r m
        | _ -> false);
  ]

let test_ratio_float_close () =
  let edges = cr_edges [ (0, 1, 1, 1); (1, 2, 1, 0); (2, 0, 1, 1) ] in
  match Cycle_ratio.max_ratio_float ~n:3 ~edges ~epsilon:1e-4 with
  | Cycle_ratio.Ratio r ->
      Alcotest.(check bool) "close to 1.5" true
        (abs_float (Rat.to_float r -. 1.5) < 1e-3)
  | _ -> Alcotest.fail "expected ratio"

let () =
  Alcotest.run "graphs"
    [
      ( "scc",
        [
          Alcotest.test_case "basic" `Quick test_scc_basic;
          Alcotest.test_case "single cycle" `Quick test_scc_single_cycle;
          Alcotest.test_case "dag" `Quick test_scc_dag;
          Alcotest.test_case "self loop" `Quick test_scc_self_loop;
          Alcotest.test_case "topo order" `Quick test_scc_topo_order;
        ] );
      ("scc-props", List.map QCheck_alcotest.to_alcotest qcheck_scc);
      ( "topo",
        [
          Alcotest.test_case "dag" `Quick test_topo_dag;
          Alcotest.test_case "cycle" `Quick test_topo_cycle;
          Alcotest.test_case "levels" `Quick test_topo_levels;
          Alcotest.test_case "unreachable" `Quick test_topo_levels_unreachable;
        ] );
      ( "bellman-ford",
        [
          Alcotest.test_case "no cycle" `Quick test_bf_no_cycle;
          Alcotest.test_case "positive cycle" `Quick test_bf_positive_cycle;
          Alcotest.test_case "longest paths" `Quick test_bf_longest;
          Alcotest.test_case "cyclic longest" `Quick test_bf_longest_cyclic;
          Alcotest.test_case "unreachable" `Quick test_bf_unreachable;
        ] );
      ( "cycle-ratio",
        [
          Alcotest.test_case "simple loop" `Quick test_ratio_simple_loop;
          Alcotest.test_case "no cycle" `Quick test_ratio_no_cycle;
          Alcotest.test_case "infinite" `Quick test_ratio_infinite;
          Alcotest.test_case "zero-zero loop" `Quick
            test_ratio_zero_delay_zero_weight_loop;
          Alcotest.test_case "two loops" `Quick test_ratio_two_loops;
          Alcotest.test_case "exceeds" `Quick test_ratio_exceeds;
          Alcotest.test_case "float search" `Quick test_ratio_float_close;
        ] );
      ("cycle-ratio-props", List.map QCheck_alcotest.to_alcotest qcheck_cycle_ratio);
      ("howard-props", List.map QCheck_alcotest.to_alcotest qcheck_howard);
      ("karp-props", List.map QCheck_alcotest.to_alcotest qcheck_karp);
    ]
