(* Tests for the simulator and equivalence checks. *)

open Circuit
open Logic

let test_comb_xor () =
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl and b = Netlist.add_pi nl in
  let g = Build.xor2 nl a b in
  ignore (Netlist.add_po nl ~driver:g ~weight:0);
  let outs =
    Sim.Simulator.run nl
      [| [| false; false |]; [| true; false |]; [| true; true |] |]
  in
  Alcotest.(check (array (array bool))) "xor outputs"
    [| [| false |]; [| true |]; [| false |] |]
    outs

let test_register_delay () =
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl in
  let g = Build.buf ~w:2 nl a in
  ignore (Netlist.add_po nl ~driver:g ~weight:0);
  let inputs = [| [| true |]; [| false |]; [| true |]; [| true |] |] in
  let outs = Sim.Simulator.run nl inputs in
  (* two-cycle delay, initial zeros *)
  Alcotest.(check (array (array bool))) "delayed"
    [| [| false |]; [| false |]; [| true |]; [| false |] |]
    outs

let test_po_weight () =
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl in
  let g = Build.buf nl a in
  ignore (Netlist.add_po nl ~driver:g ~weight:1);
  let outs = Sim.Simulator.run nl [| [| true |]; [| false |] |] in
  Alcotest.(check (array (array bool))) "po register"
    [| [| false |]; [| true |] |]
    outs

let test_toggle_counter () =
  (* t = t xor 1 delayed: alternates 0,1,0,1... *)
  let nl = Netlist.create () in
  let _pi = Netlist.add_pi nl in
  let g = Netlist.reserve_gate nl in
  Netlist.define_gate nl g (Truthtable.not_ (Truthtable.var 1 0)) [| (g, 1) |];
  ignore (Netlist.add_po nl ~driver:g ~weight:0);
  let outs = Sim.Simulator.run nl (Array.make 4 [| false |]) in
  Alcotest.(check (array (array bool))) "toggle"
    [| [| true |]; [| false |]; [| true |]; [| false |] |]
    outs

let test_lfsr_period () =
  (* 3-bit LFSR x3 = x1 xor x2 (fibonacci), nonzero seeding is impossible
     from reset, so drive it with an enable that injects a 1 *)
  let nl = Netlist.create () in
  let inj = Netlist.add_pi nl in
  let b0 = Netlist.reserve_gate nl in
  let b1 = Build.buf ~w:1 nl b0 in
  let b2 = Build.buf ~w:1 nl b1 in
  (* feedback: b0 = (b1 xor b2 delayed 1) xor inj *)
  let fb = Build.xor2 ~wa:1 ~wb:1 nl b1 b2 in
  Netlist.define_gate nl b0 (Truthtable.xor_all 2) [| (fb, 0); (inj, 0) |];
  ignore (Netlist.add_po nl ~driver:b2 ~weight:0);
  let inputs =
    Array.init 20 (fun i -> [| i = 0 |])
  in
  let outs = Sim.Simulator.run nl inputs in
  (* the stream must be eventually periodic and non-constant *)
  let tail = Array.to_list (Array.sub outs 5 15) in
  Alcotest.(check bool) "nonconstant" true
    (List.exists (fun o -> o.(0)) tail && List.exists (fun o -> not o.(0)) tail)

let test_node_value () =
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl in
  let g = Build.not_ nl a in
  ignore (Netlist.add_po nl ~driver:g ~weight:0);
  let sim = Sim.Simulator.create nl in
  ignore (Sim.Simulator.step sim [| false |]);
  Alcotest.(check bool) "not gate" true (Sim.Simulator.node_value sim g);
  Sim.Simulator.reset sim;
  Alcotest.check_raises "no step" (Invalid_argument "Simulator.node_value: no step taken")
    (fun () -> ignore (Sim.Simulator.node_value sim g))

let test_width_mismatch () =
  let nl = Netlist.create () in
  let _ = Netlist.add_pi nl in
  let sim = Sim.Simulator.create nl in
  Alcotest.check_raises "width" (Invalid_argument "Simulator.step: PI width mismatch")
    (fun () -> ignore (Sim.Simulator.step sim [| true; false |]))

let test_prehistory () =
  (* a 2-deep delay line reading pre-reset values from the prehistory *)
  let nl = Netlist.create () in
  let a = Netlist.add_pi nl in
  let g = Build.buf ~w:2 nl a in
  ignore (Netlist.add_po nl ~driver:g ~weight:0);
  let prehistory v t =
    (* PI held 1 at t=-1, 0 at t=-2 *)
    v = a && t = -1
  in
  let sim = Sim.Simulator.create ~prehistory nl in
  let o1 = Sim.Simulator.step sim [| false |] in
  let o2 = Sim.Simulator.step sim [| false |] in
  let o3 = Sim.Simulator.step sim [| false |] in
  Alcotest.(check bool) "t=0 reads a(-2)=0" false o1.(0);
  Alcotest.(check bool) "t=1 reads a(-1)=1" true o2.(0);
  Alcotest.(check bool) "t=2 reads a(0)=0" false o3.(0)

(* --- equivalence --- *)

let adder_accumulator () =
  (* running parity of the input: s = s xor in, output s *)
  let nl = Netlist.create () in
  let x = Netlist.add_pi nl in
  let s = Netlist.reserve_gate nl in
  Netlist.define_gate nl s (Truthtable.xor_all 2) [| (x, 0); (s, 1) |];
  ignore (Netlist.add_po nl ~driver:s ~weight:0);
  nl

let test_io_equal_self () =
  let rng = Prelude.Rng.create 5 in
  let nl = adder_accumulator () in
  Alcotest.(check bool) "self equal" true (Sim.Equiv.io_equal rng nl nl)

let test_io_equal_detects_difference () =
  let rng = Prelude.Rng.create 5 in
  let a = adder_accumulator () in
  let b = Netlist.create () in
  let x = Netlist.add_pi b in
  let s = Netlist.reserve_gate b in
  (* or instead of xor *)
  Netlist.define_gate b s (Truthtable.or_all 2) [| (x, 0); (s, 1) |];
  ignore (Netlist.add_po b ~driver:s ~weight:0);
  Alcotest.(check bool) "different" false (Sim.Equiv.io_equal rng a b)

let test_io_equal_mapped_equivalent () =
  (* two structurally different implementations of the same function:
     (a and b) or (a and c)  vs  a and (b or c), both with a register on
     the output *)
  let mk variant =
    let nl = Netlist.create () in
    let a = Netlist.add_pi nl and b = Netlist.add_pi nl and c = Netlist.add_pi nl in
    let out =
      if variant then
        Build.or2 nl (Build.and2 nl a b) (Build.and2 nl a c)
      else Build.and2 nl a (Build.or2 nl b c)
    in
    ignore (Netlist.add_po nl ~driver:out ~weight:1);
    nl
  in
  let rng = Prelude.Rng.create 17 in
  Alcotest.(check bool) "equivalent" true (Sim.Equiv.io_equal rng (mk true) (mk false))

let test_latency_equal_pipeline () =
  (* comb chain vs the same chain pipelined by retiming lags *)
  let chain () =
    let nl = Netlist.create () in
    let x = Netlist.add_pi nl in
    let g1 = Build.not_ nl x in
    let g2 = Build.not_ nl g1 in
    let g3 = Build.not_ nl g2 in
    ignore (Netlist.add_po nl ~driver:g3 ~weight:0);
    nl
  in
  let a = chain () in
  let b = chain () in
  let p, r = Retime.Pipeline.min_period b in
  Alcotest.(check int) "period 1" 1 p;
  let b = Retime.Retiming.apply b ~r in
  let lat = Retime.Pipeline.latency b ~r in
  let rng = Prelude.Rng.create 23 in
  Alcotest.(check bool) "latency equivalent" true
    (Sim.Equiv.latency_equal ~warmup:0 ~latency:lat rng a b);
  (* and with the wrong latency it fails *)
  Alcotest.(check bool) "wrong latency detected" false
    (Sim.Equiv.latency_equal ~warmup:0 ~latency:(lat + 1) rng a b)

let test_find_mismatch () =
  let rng = Prelude.Rng.create 9 in
  let a = adder_accumulator () in
  let b = Netlist.create () in
  let x = Netlist.add_pi b in
  let s = Netlist.reserve_gate b in
  Netlist.define_gate b s (Truthtable.or_all 2) [| (x, 0); (s, 1) |];
  ignore (Netlist.add_po b ~driver:s ~weight:0);
  (match Sim.Equiv.find_io_mismatch rng a b with
  | None -> Alcotest.fail "mismatch expected"
  | Some (t, stream) ->
      Alcotest.(check bool) "stream covers t" true (Array.length stream = t + 1));
  let a2 = adder_accumulator () in
  Alcotest.(check bool) "no mismatch on self" true
    (Sim.Equiv.find_io_mismatch rng a a2 = None)

let () =
  Alcotest.run "sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "comb xor" `Quick test_comb_xor;
          Alcotest.test_case "register delay" `Quick test_register_delay;
          Alcotest.test_case "po weight" `Quick test_po_weight;
          Alcotest.test_case "toggle" `Quick test_toggle_counter;
          Alcotest.test_case "lfsr" `Quick test_lfsr_period;
          Alcotest.test_case "node value" `Quick test_node_value;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
          Alcotest.test_case "prehistory" `Quick test_prehistory;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "self" `Quick test_io_equal_self;
          Alcotest.test_case "detects difference" `Quick
            test_io_equal_detects_difference;
          Alcotest.test_case "mapped equivalent" `Quick
            test_io_equal_mapped_equivalent;
          Alcotest.test_case "pipeline latency" `Quick test_latency_equal_pipeline;
          Alcotest.test_case "find mismatch" `Quick test_find_mismatch;
        ] );
    ]
